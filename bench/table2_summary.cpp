// Regenerates Table 2: the qualitative summary of the RPC families,
// derived from *measured* micro-benchmark data rather than asserted:
//  - network-load sensitivity   (Fig. 14 busy latency, terciles)
//  - receiver CPU requirement   (Fig. 15 busy latency, terciles)
//  - tail latency               (Fig. 9 p99, terciles)
//  - scalability                (Fig. 17 latency growth 5 -> 20 senders)
//
// Flags: --ops=N (default 2500), --seed=N, --jobs=N, --quick

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util/micro.hpp"
#include "bench_util/sweep.hpp"
#include "bench_util/flags.hpp"
#include "bench_util/table.hpp"

using namespace prdma;

namespace {

/// Tercile grade of `v` within `all` (ascending = worse).
std::string tercile(double v, std::vector<double> all,
                    const char* low = "Low", const char* mid = "Medium",
                    const char* high = "High") {
  std::sort(all.begin(), all.end());
  const double t1 = all[all.size() / 3];
  const double t2 = all[(2 * all.size()) / 3];
  if (v <= t1) return low;
  if (v <= t2) return mid;
  return high;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  if (flags.help_requested()) {
    flags.print_help();
    return 0;
  }
  const std::uint64_t ops = flags.u64("ops", flags.flag("quick") ? 800 : 2500);
  const std::uint64_t seed = flags.u64("seed", 1);
  const net::TopologyConfig topology = bench::topology_from(flags);

  std::printf("Table 2 — measured summary of RPC families\n\n");

  struct Row {
    rpcs::System sys;
    double busy_net;
    double busy_cpu;
    double p99;
    double scale_ratio;
  };
  std::vector<Row> rows;

  bench::SweepRunner runner(bench::jobs_from(flags));
  const auto lineup = rpcs::evaluation_lineup(4096);
  // Five measurements per system, in a fixed order the formatting loop
  // below consumes back.
  std::vector<bench::MicroCell> cells;
  for (const rpcs::System sys : lineup) {
    bench::MicroConfig base;
    base.object_size = 4096;
    base.ops = ops;
    base.seed = seed;
    base.topology = topology;

    auto busy_net_cfg = base;
    busy_net_cfg.net_load = 0.85;

    auto busy_cpu_cfg = base;
    busy_cpu_cfg.server_cpu_load = 3.0;

    // Scalability on the testbed-scale server (as in Fig. 17).
    auto few_cfg = base;
    few_cfg.clients = 5;
    few_cfg.read_ratio = 0.0;
    few_cfg.ops = 150 * 5;
    few_cfg.server_cores = 20;
    few_cfg.server_workers = 16;
    auto many_cfg = few_cfg;
    many_cfg.clients = 20;
    many_cfg.ops = 150 * 20;

    cells.push_back({sys, base});
    cells.push_back({sys, busy_net_cfg});
    cells.push_back({sys, busy_cpu_cfg});
    cells.push_back({sys, few_cfg});
    cells.push_back({sys, many_cfg});
  }
  const auto results = bench::run_micro_cells(runner, cells);

  for (std::size_t s = 0; s < lineup.size(); ++s) {
    const auto& idle = results[5 * s];
    const auto& busy_net = results[5 * s + 1];
    const auto& busy_cpu = results[5 * s + 2];
    const auto& few = results[5 * s + 3];
    const auto& many = results[5 * s + 4];
    rows.push_back(Row{lineup[s], busy_net.avg_us(), busy_cpu.avg_us(),
                       idle.p99_us(), many.avg_us() / few.avg_us()});
  }

  std::vector<double> nets, cpus, p99s;
  for (const auto& r : rows) {
    nets.push_back(r.busy_net);
    cpus.push_back(r.busy_cpu);
    p99s.push_back(r.p99);
  }

  bench::TablePrinter table({"System", "NetLoad sens.", "RecvCPU req.",
                             "Tail latency", "Scalability", "Persistence"});
  for (const auto& r : rows) {
    const bool durable = rpcs::info_of(r.sys).durable;
    table.add_row({std::string(rpcs::name_of(r.sys)),
                   tercile(r.busy_net, nets),
                   tercile(r.busy_cpu, cpus),
                   tercile(r.p99, p99s) + " (" +
                       bench::TablePrinter::num(r.p99, 1) + "us p99)",
                   r.scale_ratio < 1.15 ? "Good" : "Medium",
                   durable ? "Proactive, decoupled" : "Passive"});
  }
  table.print();
  return 0;
}
