// Reproduces Fig. 10: PageRank execution time over the three graph
// datasets (wordassociation-2011, enron, dblp-2010), with the graph
// stored in the remote server's PM and fetched through each RPC
// system (§5.3). Synthetic graphs at the paper's node/edge counts
// stand in for the originals (DESIGN.md §1).
//
// Flags: --iters=N (default 10), --seed=N, --jobs=N, --quick

#include <cstdio>
#include <vector>

#include "bench_util/sweep.hpp"
#include "bench_util/flags.hpp"
#include "bench_util/micro.hpp"
#include "bench_util/table.hpp"
#include "graph/pagerank.hpp"

using namespace prdma;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  if (flags.help_requested()) {
    flags.print_help();
    return 0;
  }
  graph::PageRankConfig cfg;
  cfg.iterations = static_cast<std::uint32_t>(
      flags.u64("iters", flags.flag("quick") ? 3 : 10));
  cfg.seed = flags.u64("seed", 1);
  cfg.topology = bench::topology_from(flags);
  bench::SweepRunner runner(bench::jobs_from(flags));

  std::printf("Fig. 10 — PageRank execution time (simulated ms), %u"
              " iterations\n\n",
              cfg.iterations);

  const graph::GraphSpec specs[] = {graph::kWordAssociation, graph::kEnron,
                                    graph::kDblp};
  const auto lineup = rpcs::evaluation_lineup(cfg.page_bytes);

  struct Cell {
    rpcs::System sys;
    graph::GraphSpec spec;
  };
  std::vector<Cell> cells;
  for (const rpcs::System sys : lineup) {
    for (const auto& spec : specs) cells.push_back({sys, spec});
  }
  const auto results = runner.map(cells, [&cfg](const Cell& c) {
    return graph::run_pagerank(c.sys, c.spec, cfg);
  });

  bench::TablePrinter table(
      {"System", "wordassociation-2011", "enron", "dblp-2010"});
  std::size_t k = 0;
  for (const rpcs::System sys : lineup) {
    std::vector<std::string> row{std::string(rpcs::name_of(sys))};
    for (std::size_t i = 0; i < std::size(specs); ++i) {
      row.push_back(
          bench::TablePrinter::num(sim::to_ms(results[k++].duration), 1));
    }
    table.add_row(std::move(row));
  }
  table.print();
  return 0;
}
