// google-benchmark micro-benchmarks of the simulation substrate
// itself: event-engine throughput, coroutine round-trips, histogram
// recording, zipfian generation and PM/LLC model operations. These
// bound how much simulated work the figure benches can afford.

#include <benchmark/benchmark.h>

#include "mem/llc.hpp"
#include "mem/node_memory.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "stats/histogram.hpp"

using namespace prdma;

static void BM_EventSchedule(benchmark::State& state) {
  sim::Simulator s;
  std::uint64_t t = 0;
  for (auto _ : state) {
    s.schedule(++t % 1000, [] {});
    s.step();
  }
  benchmark::DoNotOptimize(s.events_executed());
}
BENCHMARK(BM_EventSchedule);

static void BM_EventHeapChurn(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator s;
    sim::Rng rng(1);
    for (std::uint64_t i = 0; i < n; ++i) {
      s.schedule(rng.uniform(0, 1'000'000), [] {});
    }
    s.run();
    benchmark::DoNotOptimize(s.now());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventHeapChurn)->Arg(1024)->Arg(16384);

static void BM_CoroutinePingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    sim::Channel<int> a(s);
    sim::Channel<int> b(s);
    sim::spawn([](sim::Channel<int>& in, sim::Channel<int>& out) -> sim::Task<> {
      for (int i = 0; i < 100; ++i) {
        auto v = co_await in.recv();
        if (!v) break;
        out.send(*v + 1);
      }
    }(a, b));
    sim::spawn([](sim::Channel<int>& out, sim::Channel<int>& in) -> sim::Task<> {
      out.send(0);
      for (int i = 0; i < 99; ++i) {
        auto v = co_await in.recv();
        if (!v) break;
        out.send(*v + 1);
      }
    }(a, b));
    s.run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 200);
}
BENCHMARK(BM_CoroutinePingPong);

static void BM_HistogramRecord(benchmark::State& state) {
  stats::LatencyHistogram h;
  std::uint64_t v = 12345;
  for (auto _ : state) {
    v = v * 6364136223846793005ull + 1442695040888963407ull;
    h.record(v >> 40);
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecord);

static void BM_ZipfianNext(benchmark::State& state) {
  sim::ZipfianGenerator zipf(50'000, 0.99);
  sim::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.next(rng));
  }
}
BENCHMARK(BM_ZipfianNext);

static void BM_PmDeviceWriteTiming(benchmark::State& state) {
  sim::Simulator s;
  mem::PmDevice pm(s, "pm", 1 << 20, {170, 90, 6.6e9, 12e9});
  sim::SimTime t = 0;
  for (auto _ : state) {
    t = pm.write_complete_at(t, 4096);
  }
  benchmark::DoNotOptimize(t);
}
BENCHMARK(BM_PmDeviceWriteTiming);

static void BM_LlcWriteAndFlush(benchmark::State& state) {
  sim::Simulator s;
  mem::PmDevice pm(s, "pm", 1 << 20, {170, 90, 6.6e9, 12e9});
  mem::Llc llc(s, pm, {});
  std::vector<std::byte> data(4096);
  sim::SimTime t = 0;
  for (auto _ : state) {
    llc.write(0, data);
    t = llc.clflush(t, 0, data.size());
  }
  benchmark::DoNotOptimize(t);
}
BENCHMARK(BM_LlcWriteAndFlush);

BENCHMARK_MAIN();
