// Reproduces Fig. 14: impact of RDMA network load on average RPC
// latency (idle vs busy link). The paper's findings: receiver-
// initiated Flush RPCs suffer least (fewer wire crossings on the
// persistence path); write-based RPCs are more load-sensitive than
// send-based ones.
//
// Flags: --ops=N (default 4000), --seed=N, --load=0.85, --jobs=N, --quick
// plus the common --topology family: under rack / leaf-spine the same
// background load applies per cable and switch queues add on top (see
// EXPERIMENTS.md "Fig. 14 under switched topologies").
//
// Degraded-fabric axis (DESIGN.md §7.8): --loss=P injects a uniform
// per-packet loss probability into every cable (RC go-back-N recovers;
// latency degrades); --loss-sweep replaces the idle/busy grid with a
// loss sweep over {0, 1e-4, 1e-3, 1e-2} and prints the degradation
// curve per system.

#include <cstdio>
#include <vector>

#include "bench_util/micro.hpp"
#include "bench_util/sweep.hpp"
#include "bench_util/flags.hpp"
#include "bench_util/table.hpp"

using namespace prdma;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  if (flags.help_requested()) {
    flags.print_help();
    return 0;
  }
  const std::uint64_t ops = flags.u64("ops", flags.flag("quick") ? 1000 : 4000);
  const std::uint64_t seed = flags.u64("seed", 1);
  const double busy = flags.real("load", 0.85);
  const double loss = flags.real("loss", 0.0);
  const net::TopologyConfig topology = bench::topology_from(flags);
  bench::SweepRunner runner(bench::jobs_from(flags));

  const auto lineup = rpcs::evaluation_lineup(64 * 1024);

  if (flags.flag("loss-sweep")) {
    // Degradation curve: avg latency per system as the fabric loses
    // more packets. The RC timer shrinks to 1 ms so the curve shows
    // recovery cost, not the paper's 100 ms crash-detection interval.
    const std::vector<double> losses = {0.0, 1e-4, 1e-3, 1e-2};
    std::vector<bench::MicroCell> cells;
    for (const rpcs::System sys : lineup) {
      for (const double p : losses) {
        bench::MicroConfig cfg;
        cfg.object_size = 16 * 1024;
        cfg.ops = ops;
        cfg.seed = seed;
        cfg.topology = topology;
        cfg.loss_probability = p;
        cfg.retransmit_interval = 1 * sim::kMillisecond;
        cells.push_back({sys, cfg});
      }
    }
    const auto results = bench::run_micro_cells(runner, cells);

    std::printf("Fig. 14 (loss sweep) — avg latency (us) vs packet loss\n\n");
    bench::TablePrinter table(
        {"System", "loss=0", "1e-4", "1e-3", "1e-2", "worst/clean",
         "drops", "retx"});
    std::size_t k = 0;
    for (const rpcs::System sys : lineup) {
      std::vector<double> us;
      std::uint64_t drops = 0;
      std::uint64_t retx = 0;
      for (std::size_t i = 0; i < losses.size(); ++i) {
        const bench::MicroResult& r = results[k++];
        us.push_back(r.avg_us());
        drops += r.net_drops;
        retx += r.rnic_retransmits;
      }
      table.add_row({std::string(rpcs::name_of(sys)),
                     bench::TablePrinter::num(us[0], 1),
                     bench::TablePrinter::num(us[1], 1),
                     bench::TablePrinter::num(us[2], 1),
                     bench::TablePrinter::num(us[3], 1),
                     bench::TablePrinter::num(us[3] / us[0], 2),
                     std::to_string(drops), std::to_string(retx)});
    }
    table.print();
    return 0;
  }

  std::printf("Fig. 14 — avg latency (us), idle vs busy network (load=%.2f)\n\n",
              busy);

  std::vector<bench::MicroCell> cells;
  for (const rpcs::System sys : lineup) {
    for (const bool is_busy : {false, true}) {
      bench::MicroConfig cfg;
      cfg.object_size = 16 * 1024;
      cfg.ops = ops;
      cfg.seed = seed;
      cfg.net_load = is_busy ? busy : 0.0;
      cfg.topology = topology;
      if (loss > 0.0) {
        cfg.loss_probability = loss;
        cfg.retransmit_interval = 1 * sim::kMillisecond;
      }
      cells.push_back({sys, cfg});
    }
  }
  const auto results = bench::run_micro_cells(runner, cells);

  bench::TablePrinter table({"System", "Idle", "Busy", "Busy/Idle"});
  std::size_t k = 0;
  for (const rpcs::System sys : lineup) {
    const double idle = results[k++].avg_us();
    const double loaded = results[k++].avg_us();
    table.add_row({std::string(rpcs::name_of(sys)),
                   bench::TablePrinter::num(idle, 1),
                   bench::TablePrinter::num(loaded, 1),
                   bench::TablePrinter::num(loaded / idle, 2)});
  }
  table.print();
  return 0;
}
