// Reproduces Fig. 14: impact of RDMA network load on average RPC
// latency (idle vs busy link). The paper's findings: receiver-
// initiated Flush RPCs suffer least (fewer wire crossings on the
// persistence path); write-based RPCs are more load-sensitive than
// send-based ones.
//
// Flags: --ops=N (default 4000), --seed=N, --load=0.85, --quick

#include <cstdio>

#include "bench_util/micro.hpp"
#include "bench_util/table.hpp"

using namespace prdma;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const std::uint64_t ops = flags.u64("ops", flags.flag("quick") ? 1000 : 4000);
  const std::uint64_t seed = flags.u64("seed", 1);
  const double busy = flags.real("load", 0.85);

  std::printf("Fig. 14 — avg latency (us), idle vs busy network (load=%.2f)\n\n",
              busy);

  bench::TablePrinter table({"System", "Idle", "Busy", "Busy/Idle"});
  for (const rpcs::System sys : rpcs::evaluation_lineup(64 * 1024)) {
    double idle = 0;
    double loaded = 0;
    for (const bool is_busy : {false, true}) {
      bench::MicroConfig cfg;
      cfg.object_size = 16 * 1024;
      cfg.ops = ops;
      cfg.seed = seed;
      cfg.net_load = is_busy ? busy : 0.0;
      const auto res = bench::run_micro(sys, cfg);
      (is_busy ? loaded : idle) = res.avg_us();
    }
    table.add_row({std::string(rpcs::name_of(sys)),
                   bench::TablePrinter::num(idle, 1),
                   bench::TablePrinter::num(loaded, 1),
                   bench::TablePrinter::num(loaded / idle, 2)});
  }
  table.print();
  return 0;
}
