// Extension (§4.5 "Data Persistence with Multiple Replicas"): the
// replication-factor × protocol × durable-variant sweep the paper
// never measured. Every write transaction is replicated across R
// durable PM servers (src/repl):
//   * chain  — head persists, then store-and-forward down the chain,
//              ack after the tail's persist ACK returns;
//   * mirror — all R durable flushes in flight from the client at
//              once, ack at the slowest persist ACK.
// The `none-r1` rows are the single-primary durable RPCs — the
// replication cost baseline.
//
// Flags: --ops=N (default 2000), --seed=N, --jobs=N, --quick,
//        --json=FILE (BENCH_replication.json in CI), --trace=FILE,
//        --content-mode=full|shadow,
//        --engine-threads=N (partitioned event engine, default 1;
//          results are byte-identical at any value — chain cells pin a
//          single partition internally)

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util/flags.hpp"
#include "bench_util/micro.hpp"
#include "bench_util/report.hpp"
#include "bench_util/sweep.hpp"
#include "bench_util/table.hpp"
#include "repl/replication.hpp"
#include "rpcs/registry.hpp"

using namespace prdma;

namespace {

constexpr std::uint32_t kValue = 4096;

const std::vector<rpcs::System>& durable_systems() {
  static const std::vector<rpcs::System> kSystems = {
      rpcs::System::kWFlushRpc, rpcs::System::kSFlushRpc,
      rpcs::System::kWRFlushRpc, rpcs::System::kSRFlushRpc};
  return kSystems;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  if (flags.help_requested()) {
    flags.print_help();
    return 0;
  }
  const std::uint64_t ops = flags.u64("ops", flags.flag("quick") ? 400 : 2000);
  const std::uint64_t seed = flags.u64("seed", 1);
  const unsigned engine_threads = bench::engine_threads_from(flags);

  bench::Report report(flags, "replication");

  struct Grid {
    repl::Protocol protocol;
    std::size_t replicas;
  };
  const std::vector<Grid> grid = {
      {repl::Protocol::kNone, 1},
      {repl::Protocol::kChain, 2},
      {repl::Protocol::kChain, 3},
      {repl::Protocol::kMirror, 2},
      {repl::Protocol::kMirror, 3},
  };

  std::vector<bench::MicroCell> cells;
  std::vector<std::string> names;
  for (const Grid& g : grid) {
    for (const rpcs::System sys : durable_systems()) {
      bench::MicroConfig mc;
      mc.object_size = kValue;
      mc.read_ratio = 0.0;  // replication is a write-path protocol
      mc.ops = ops;
      mc.seed = seed;
      mc.engine_threads = engine_threads;
      if (g.protocol != repl::Protocol::kNone) {
        mc.replication.protocol = g.protocol;
        mc.replication.replicas = g.replicas;
      }
      report.configure(mc);
      names.push_back(std::string(repl::protocol_name(g.protocol)) + "-r" +
                      std::to_string(g.replicas) + "/" +
                      std::string(rpcs::name_of(sys)));
      cells.push_back({sys, mc});
    }
  }

  std::printf("Extension §4.5 — replicated durable writes (4 KB, R:W 0:1)\n\n");
  bench::SweepRunner runner(bench::jobs_from(flags));
  const std::vector<bench::MicroResult> results =
      bench::run_micro_cells(runner, cells);

  report.meta("ops", bench::Json::num(ops));
  report.meta("engine_threads",
              bench::Json::num(std::uint64_t{engine_threads}));
  report.meta("object_size", bench::Json::num(std::uint64_t{kValue}));
  report.meta("grid", bench::Json::str("protocol x replicas x variant"));

  bench::TablePrinter table(
      {"Cell", "kops", "avg (us)", "p99 (us)", "durable avg (us)"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const bench::MicroResult& r = results[i];
    table.add_row({names[i], bench::TablePrinter::num(r.kops, 1),
                   bench::TablePrinter::num(r.avg_us(), 1),
                   bench::TablePrinter::num(r.p99_us(), 1),
                   bench::TablePrinter::num(r.durable_latency.mean() / 1e3,
                                            1)});
    report.add(names[i], r);
  }
  table.print();
  std::printf(
      "\nMirror overlaps the R persistence round-trips (~ the slowest\n"
      "single replica); chain pays one store-and-forward hop per extra\n"
      "replica. Both inherit the durable variant's persist primitive.\n");
  if (!report.write()) {
    std::fprintf(stderr, "failed to write report files\n");
    return 1;
  }
  return 0;
}
