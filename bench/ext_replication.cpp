// Extension (§4.5 "Data Persistence with Multiple Replicas"): the
// paper's primitives as a building block for replication. A client
// writes each object durably to a primary AND a backup PM server;
// we compare
//   * parallel durable flushes (both replicas in flight at once),
//   * sequential durable flushes (primary, then backup),
//   * a traditional RPC chain (FaRM to primary, then to backup).
//
// Flags: --ops=N (default 2000), --seed=N, --jobs=N, --quick

#include <cstdio>
#include <vector>

#include "bench_util/micro.hpp"
#include "bench_util/sweep.hpp"
#include "bench_util/flags.hpp"
#include "bench_util/table.hpp"
#include "core/durable_rpc.hpp"
#include "rpcs/registry.hpp"
#include "sim/sync.hpp"

using namespace prdma;

namespace {

constexpr std::uint32_t kValue = 4096;

double run_durable(bool parallel, std::uint64_t ops, std::uint64_t seed) {
  bench::MicroConfig mc;
  mc.object_size = kValue;
  mc.seed = seed;
  const auto params = bench::params_for(mc);

  core::Cluster cluster(params, 3);  // 0=primary, 1=backup, 2=client
  core::DurableRpcServer primary(cluster, 0, core::FlushVariant::kWFlush,
                                 params);
  core::DurableRpcServer backup(cluster, 1, core::FlushVariant::kWFlush,
                                params);
  auto c_primary = primary.connect_client(2);
  auto c_backup = backup.connect_client(2);
  primary.start();
  backup.start();

  stats::LatencyHistogram lat;
  sim::spawn([](core::Cluster& cl, core::DurableRpcClient& p,
                core::DurableRpcClient& b, bool par, std::uint64_t n,
                stats::LatencyHistogram& out) -> sim::Task<> {
    for (std::uint64_t i = 0; i < n; ++i) {
      const core::RpcRequest req{core::RpcOp::kWrite, i % 64, kValue};
      const sim::SimTime t0 = cl.sim().now();
      if (par) {
        // Both replicas in flight; replication completes when both
        // flush ACKs arrived.
        sim::WaitGroup wg(cl.sim());
        wg.add(2);
        sim::spawn([](core::DurableRpcClient& c, core::RpcRequest r,
                      sim::WaitGroup& w) -> sim::Task<> {
          (void)co_await c.call(r);
          w.done();
        }(p, req, wg));
        sim::spawn([](core::DurableRpcClient& c, core::RpcRequest r,
                      sim::WaitGroup& w) -> sim::Task<> {
          (void)co_await c.call(r);
          w.done();
        }(b, req, wg));
        co_await wg.wait();
      } else {
        (void)co_await p.call(req);
        (void)co_await b.call(req);
      }
      out.record(cl.sim().now() - t0);
    }
  }(cluster, *c_primary, *c_backup, parallel, ops, lat));
  cluster.sim().run();
  return lat.mean() / 1e3;
}

double run_traditional(std::uint64_t ops, std::uint64_t seed) {
  bench::MicroConfig mc;
  mc.object_size = kValue;
  mc.seed = seed;
  const auto params = bench::params_for(mc);

  core::Cluster cluster(params, 3);
  const std::size_t client_of_primary[] = {2};
  const std::size_t client_of_backup[] = {2};
  auto p = rpcs::make_deployment(cluster, rpcs::System::kFaRM, 0,
                                 client_of_primary, params);
  auto b = rpcs::make_deployment(cluster, rpcs::System::kFaRM, 1,
                                 client_of_backup, params);

  stats::LatencyHistogram lat;
  sim::spawn([](core::Cluster& cl, core::RpcClient& cp, core::RpcClient& cb,
                std::uint64_t n, stats::LatencyHistogram& out) -> sim::Task<> {
    for (std::uint64_t i = 0; i < n; ++i) {
      const core::RpcRequest req{core::RpcOp::kWrite, i % 64, kValue};
      const sim::SimTime t0 = cl.sim().now();
      (void)co_await cp.call(req);  // chain: primary then backup
      (void)co_await cb.call(req);
      out.record(cl.sim().now() - t0);
    }
  }(cluster, *p.clients[0], *b.clients[0], ops, lat));
  cluster.sim().run();
  return lat.mean() / 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  if (flags.help_requested()) {
    flags.print_help();
    return 0;
  }
  const std::uint64_t ops = flags.u64("ops", flags.flag("quick") ? 500 : 2000);
  const std::uint64_t seed = flags.u64("seed", 1);

  std::printf("Extension §4.5 — two-replica durable writes (4KB)\n\n");
  bench::SweepRunner runner(bench::jobs_from(flags));
  const std::vector<double> lats = runner.map_n(3, [&](std::size_t i) {
    if (i == 0) return run_durable(true, ops, seed);
    if (i == 1) return run_durable(false, ops, seed);
    return run_traditional(ops, seed);
  });
  bench::TablePrinter table({"Scheme", "replication latency (us)"});
  table.add_row({"WFlush-RPC, parallel replicas",
                 bench::TablePrinter::num(lats[0], 1)});
  table.add_row({"WFlush-RPC, sequential replicas",
                 bench::TablePrinter::num(lats[1], 1)});
  table.add_row({"Traditional (FaRM) chain",
                 bench::TablePrinter::num(lats[2], 1)});
  table.print();
  std::printf("\nParallel durable flushes overlap the two persistence\n");
  std::printf("round-trips — the paper's foundation for replication\n");
  std::printf("protocols (§4.5).\n");
  return 0;
}
