// Crash-schedule explorer CLI: sweeps random + phase-boundary crash
// schedules over the durable RPC variants and reports durability-
// oracle verdicts (src/check/). A correct stack prints zero failures;
// --mutant switches on the ack-before-persist RNIC fault to show the
// oracle catching, shrinking and printing a re-runnable reproducer.
//
// --replication=chain|mirror lifts the same sweep to an R-replica
// deployment audited by the cluster oracle (src/check/repl_explorer):
// per-replica, correlated and crash-during-recovery schedules, with
// the mutant becoming ack-before-REPLICA-persist.
//
// Flags: --variant=wflush|sflush|wrflush|srflush (default: all four)
//        --schedules=N (random schedules per variant, default 32)
//        --ops=N --window=N --value=BYTES --seed=N
//        --mutant (ack-before-persist fault; pair with --value=32768)
//        --replication=chain|mirror --replicas=N (cluster-level sweep)
//        --repro="seed=S crash_at=Tns ops=N" (re-run one schedule;
//          replicated lines are "seed=S ops=N crash=R@Tns,R@Tns")
//        --jobs=N (parallel schedules; output is identical at any N)
//        --engine-threads=N (accepted for flag parity with the bench
//          binaries but clamped to 1: crash hooks require the serial
//          single-partition engine — DESIGN.md §7.5 coherence rule)

#include <cstdio>
#include <string>

#include "bench_util/flags.hpp"
#include "bench_util/micro.hpp"
#include "bench_util/sweep.hpp"
#include "bench_util/table.hpp"
#include "check/explorer.hpp"
#include "check/repl_explorer.hpp"

using namespace prdma;

namespace {

struct NamedVariant {
  const char* name;
  core::FlushVariant variant;
};

constexpr NamedVariant kVariants[] = {
    {"wflush", core::FlushVariant::kWFlush},
    {"sflush", core::FlushVariant::kSFlush},
    {"wrflush", core::FlushVariant::kWRFlush},
    {"srflush", core::FlushVariant::kSRFlush},
};

check::ExplorerConfig config_from(const bench::Flags& flags,
                                  core::FlushVariant v) {
  check::ExplorerConfig cfg;
  cfg.variant = v;
  cfg.seed = flags.u64("seed", 1);
  cfg.ops = flags.u64("ops", 48);
  cfg.window = static_cast<std::uint32_t>(flags.u64("window", 8));
  cfg.value_size = static_cast<std::uint32_t>(flags.u64("value", 4096));
  cfg.random_schedules =
      static_cast<std::uint32_t>(flags.u64("schedules", 32));
  cfg.ack_before_persist = flags.flag("mutant");
  cfg.restart_delay = 1 * sim::kMillisecond;
  cfg.jobs = bench::jobs_from(flags);
  return cfg;
}

check::ReplExplorerConfig repl_config_from(const bench::Flags& flags,
                                           core::FlushVariant v,
                                           repl::Protocol protocol) {
  check::ReplExplorerConfig cfg;
  cfg.variant = v;
  cfg.protocol = protocol;
  cfg.replicas = static_cast<std::size_t>(flags.u64("replicas", 2));
  cfg.seed = flags.u64("seed", 1);
  cfg.ops = flags.u64("ops", 24);
  cfg.window = static_cast<std::uint32_t>(flags.u64("window", 4));
  cfg.value_size = static_cast<std::uint32_t>(flags.u64("value", 4096));
  cfg.random_schedules =
      static_cast<std::uint32_t>(flags.u64("schedules", 16));
  cfg.ack_before_replica_persist = flags.flag("mutant");
  cfg.jobs = bench::jobs_from(flags);
  return cfg;
}

void print_violations(const std::vector<check::Violation>& violations,
                      const char* prefix) {
  for (const auto& v : violations) {
    std::printf("%s  %s seq=%llu at=%lluns: %s\n", prefix,
                check::violation_name(v.kind),
                static_cast<unsigned long long>(v.seq),
                static_cast<unsigned long long>(v.at), v.detail.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  if (flags.help_requested()) {
    flags.print_help();
    return 0;
  }
  if (bench::engine_threads_from(flags) > 1) {
    std::printf("note: --engine-threads clamped to 1 — crash-schedule "
                "exploration requires the single-partition engine\n\n");
  }
  const std::string chosen = flags.str("variant", "all");
  const std::string repl_name = flags.str("replication", "none");
  const auto protocol = repl::protocol_from_name(repl_name);
  if (!protocol.has_value()) {
    std::printf("unknown --replication=%s (chain|mirror|none)\n",
                repl_name.c_str());
    return 2;
  }

  std::printf("Crash-schedule explorer — durability oracle verdicts\n");
  std::printf("(every persist-ACK must survive a power failure at any\n");
  std::printf(" later nanosecond; §4.2 invariants, all crash schedules)\n\n");

  if (*protocol != repl::Protocol::kNone) {
    // Replicated exploration: per-replica boundary/correlated/random
    // crash schedules audited by the cluster oracle.
    if (const std::string line = flags.str("repro", ""); !line.empty()) {
      const auto sched = check::parse_repl_reproducer(line);
      if (!sched.has_value()) {
        std::printf("unparseable replicated reproducer: %s\n", line.c_str());
        return 2;
      }
      const auto cfg = repl_config_from(flags, kVariants[0].variant,
                                        *protocol);
      const auto r = check::run_repl_schedule(cfg, *sched);
      std::printf("replayed %s\n",
                  check::format_repl_reproducer(*sched).c_str());
      std::printf("  crashes=%llu ops=%llu txn_acks=%llu hop_acks=%llu "
                  "replays=%llu\n",
                  static_cast<unsigned long long>(r.crashes_fired),
                  static_cast<unsigned long long>(r.ops_completed),
                  static_cast<unsigned long long>(r.txn_acks),
                  static_cast<unsigned long long>(r.hop_acks),
                  static_cast<unsigned long long>(r.replays));
      print_violations(r.violations, "");
      if (r.violations.empty()) std::printf("  no violations\n");
      return r.violations.empty() ? 0 : 1;
    }

    bench::TablePrinter table({"Variant", "Protocol", "Schedules",
                               "Boundaries", "Failed", "Verdict"});
    int exit_code = 0;
    for (const auto& nv : kVariants) {
      if (chosen != "all" && chosen != nv.name) continue;
      const auto cfg = repl_config_from(flags, nv.variant, *protocol);
      const auto rep = check::explore_repl(cfg);
      table.add_row({nv.name, std::string(repl::protocol_name(*protocol)),
                     std::to_string(rep.schedules_run),
                     std::to_string(rep.boundary_points.size()),
                     std::to_string(rep.schedules_failed),
                     rep.schedules_failed == 0 ? "durable" : "VIOLATED"});
      if (rep.schedules_failed != 0) {
        exit_code = 1;
        std::printf("[%s] first failing schedule: %s\n", nv.name,
                    check::format_repl_reproducer(rep.first_failure->schedule)
                        .c_str());
        if (rep.minimal.has_value()) {
          std::printf("[%s] shrunken reproducer:    %s\n", nv.name,
                      rep.reproducer.c_str());
          print_violations(rep.minimal->violations,
                           ("[" + std::string(nv.name) + "]").c_str());
        }
      }
    }
    table.print();
    std::printf("\n(re-run any schedule with --replication=%s "
                "--repro=\"seed=S ops=N crash=R@Tns,R@Tns\")\n",
                repl_name.c_str());
    return exit_code;
  }

  if (const std::string line = flags.str("repro", ""); !line.empty()) {
    const auto sched = check::parse_reproducer(line);
    if (!sched.has_value()) {
      std::printf("unparseable reproducer: %s\n", line.c_str());
      return 2;
    }
    const auto cfg = config_from(flags, kVariants[0].variant);
    const auto r = check::run_schedule(cfg, *sched);
    std::printf("replayed %s\n", check::format_reproducer(*sched).c_str());
    std::printf("  crash_fired=%d ops=%llu acks=%llu replays=%llu\n",
                r.crash_fired ? 1 : 0,
                static_cast<unsigned long long>(r.ops_completed),
                static_cast<unsigned long long>(r.acks),
                static_cast<unsigned long long>(r.replays));
    for (const auto& v : r.violations) {
      std::printf("  VIOLATION %s seq=%llu at=%lluns: %s\n",
                  check::violation_name(v.kind),
                  static_cast<unsigned long long>(v.seq),
                  static_cast<unsigned long long>(v.at), v.detail.c_str());
    }
    if (r.violations.empty()) std::printf("  no violations\n");
    return r.violations.empty() ? 0 : 1;
  }

  bench::TablePrinter table(
      {"Variant", "Schedules", "Boundaries", "Failed", "Verdict"});
  int exit_code = 0;
  for (const auto& nv : kVariants) {
    if (chosen != "all" && chosen != nv.name) continue;
    const auto cfg = config_from(flags, nv.variant);
    const auto rep = check::explore(cfg);
    table.add_row({nv.name, std::to_string(rep.schedules_run),
                   std::to_string(rep.boundary_points.size()),
                   std::to_string(rep.schedules_failed),
                   rep.schedules_failed == 0 ? "durable" : "VIOLATED"});
    if (rep.schedules_failed != 0) {
      exit_code = 1;
      std::printf("[%s] first failing schedule: %s\n", nv.name,
                  check::format_reproducer(rep.first_failure->schedule)
                      .c_str());
      if (rep.minimal.has_value()) {
        std::printf("[%s] shrunken reproducer:    %s\n", nv.name,
                    rep.reproducer.c_str());
        for (const auto& v : rep.minimal->violations) {
          std::printf("[%s]   %s seq=%llu at=%lluns: %s\n", nv.name,
                      check::violation_name(v.kind),
                      static_cast<unsigned long long>(v.seq),
                      static_cast<unsigned long long>(v.at),
                      v.detail.c_str());
        }
      }
    }
  }
  table.print();
  std::printf("\n(re-run any schedule with --repro=\"seed=S crash_at=Tns "
              "ops=N\")\n");
  return exit_code;
}
