// Crash-schedule explorer CLI: sweeps random + phase-boundary crash
// schedules over the durable RPC variants and reports durability-
// oracle verdicts (src/check/). A correct stack prints zero failures;
// --mutant switches on the ack-before-persist RNIC fault to show the
// oracle catching, shrinking and printing a re-runnable reproducer.
//
// Flags: --variant=wflush|sflush|wrflush|srflush (default: all four)
//        --schedules=N (random schedules per variant, default 32)
//        --ops=N --window=N --value=BYTES --seed=N
//        --mutant (ack-before-persist fault; pair with --value=32768)
//        --repro="seed=S crash_at=Tns ops=N" (re-run one schedule)
//        --jobs=N (parallel schedules; output is identical at any N)

#include <cstdio>
#include <string>

#include "bench_util/sweep.hpp"
#include "bench_util/flags.hpp"
#include "bench_util/table.hpp"
#include "check/explorer.hpp"

using namespace prdma;

namespace {

struct NamedVariant {
  const char* name;
  core::FlushVariant variant;
};

constexpr NamedVariant kVariants[] = {
    {"wflush", core::FlushVariant::kWFlush},
    {"sflush", core::FlushVariant::kSFlush},
    {"wrflush", core::FlushVariant::kWRFlush},
    {"srflush", core::FlushVariant::kSRFlush},
};

check::ExplorerConfig config_from(const bench::Flags& flags,
                                  core::FlushVariant v) {
  check::ExplorerConfig cfg;
  cfg.variant = v;
  cfg.seed = flags.u64("seed", 1);
  cfg.ops = flags.u64("ops", 48);
  cfg.window = static_cast<std::uint32_t>(flags.u64("window", 8));
  cfg.value_size = static_cast<std::uint32_t>(flags.u64("value", 4096));
  cfg.random_schedules =
      static_cast<std::uint32_t>(flags.u64("schedules", 32));
  cfg.ack_before_persist = flags.flag("mutant");
  cfg.restart_delay = 1 * sim::kMillisecond;
  cfg.jobs = bench::jobs_from(flags);
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  if (flags.help_requested()) {
    flags.print_help();
    return 0;
  }
  const std::string chosen = flags.str("variant", "all");

  std::printf("Crash-schedule explorer — durability oracle verdicts\n");
  std::printf("(every persist-ACK must survive a power failure at any\n");
  std::printf(" later nanosecond; §4.2 invariants, all crash schedules)\n\n");

  if (const std::string line = flags.str("repro", ""); !line.empty()) {
    const auto sched = check::parse_reproducer(line);
    if (!sched.has_value()) {
      std::printf("unparseable reproducer: %s\n", line.c_str());
      return 2;
    }
    const auto cfg = config_from(flags, kVariants[0].variant);
    const auto r = check::run_schedule(cfg, *sched);
    std::printf("replayed %s\n", check::format_reproducer(*sched).c_str());
    std::printf("  crash_fired=%d ops=%llu acks=%llu replays=%llu\n",
                r.crash_fired ? 1 : 0,
                static_cast<unsigned long long>(r.ops_completed),
                static_cast<unsigned long long>(r.acks),
                static_cast<unsigned long long>(r.replays));
    for (const auto& v : r.violations) {
      std::printf("  VIOLATION %s seq=%llu at=%lluns: %s\n",
                  check::violation_name(v.kind),
                  static_cast<unsigned long long>(v.seq),
                  static_cast<unsigned long long>(v.at), v.detail.c_str());
    }
    if (r.violations.empty()) std::printf("  no violations\n");
    return r.violations.empty() ? 0 : 1;
  }

  bench::TablePrinter table(
      {"Variant", "Schedules", "Boundaries", "Failed", "Verdict"});
  int exit_code = 0;
  for (const auto& nv : kVariants) {
    if (chosen != "all" && chosen != nv.name) continue;
    const auto cfg = config_from(flags, nv.variant);
    const auto rep = check::explore(cfg);
    table.add_row({nv.name, std::to_string(rep.schedules_run),
                   std::to_string(rep.boundary_points.size()),
                   std::to_string(rep.schedules_failed),
                   rep.schedules_failed == 0 ? "durable" : "VIOLATED"});
    if (rep.schedules_failed != 0) {
      exit_code = 1;
      std::printf("[%s] first failing schedule: %s\n", nv.name,
                  check::format_reproducer(rep.first_failure->schedule)
                      .c_str());
      if (rep.minimal.has_value()) {
        std::printf("[%s] shrunken reproducer:    %s\n", nv.name,
                    rep.reproducer.c_str());
        for (const auto& v : rep.minimal->violations) {
          std::printf("[%s]   %s seq=%llu at=%lluns: %s\n", nv.name,
                      check::violation_name(v.kind),
                      static_cast<unsigned long long>(v.seq),
                      static_cast<unsigned long long>(v.at),
                      v.detail.c_str());
        }
      }
    }
  }
  table.print();
  std::printf("\n(re-run any schedule with --repro=\"seed=S crash_at=Tns "
              "ops=N\")\n");
  return exit_code;
}
