// Regenerates Table 1: the taxonomy of RDMA-based RPC systems by
// primitive and transport, from the registry of systems this
// repository actually implements.

#include <cstdio>

#include "bench_util/table.hpp"
#include "rpcs/registry.hpp"

using namespace prdma;

int main() {
  std::printf("Table 1 — RDMA-based RPC systems (implemented registry)\n\n");
  bench::TablePrinter table({"System", "Primitive", "Transport", "Durable",
                             "Two-sided", "Kernel", "Max object"});
  for (const auto& info : rpcs::all_systems()) {
    table.add_row({std::string(info.name), std::string(info.primitive),
                   std::string(info.transport), info.durable ? "yes" : "no",
                   info.two_sided ? "yes" : "no",
                   info.kernel_level ? "yes" : "no",
                   info.max_object == 0
                       ? std::string("-")
                       : std::to_string(info.max_object) + "B"});
  }
  table.print();
  return 0;
}
