// Event-engine and sweep-runner performance proof (tracked from PR 2
// onward via BENCH_engine.json):
//
//  1. Raw engine throughput — a self-rescheduling "pinger" workload
//     whose capture mimics the RNIC hot path (~112 B, defeats
//     std::function's small-buffer optimisation) — on the current
//     slab/InlineTask engine vs the pre-PR engine, which is kept here
//     verbatim (std::function per event, events stored inside the heap
//     array) as LegacyEngine.
//  2. Steady-state allocations/event of the current engine, from the
//     instrumented counters (Simulator::pool_allocations and
//     sim::inline_fn_heap_allocs): expected 0 after warm-up.
//  3. A reference micro cell (WFlush-RPC, 1 KB writes): simulated
//     events replayed per wall-clock second, plus its heap-fallback
//     count (expected 0).
//  4. SweepRunner wall-clock at --jobs=1 vs --jobs=N on a small grid,
//     asserting the merged results are identical (per-cell wall times
//     land in the JSON so sweep_speedup regressions are attributable).
//  5. Data plane (PR 4, BENCH_dataplane.json): the same durable cell
//     at 64 B / 1 KB / 16 KB in kShadow vs kFull content mode —
//     asserting byte-identical stats, recording bytes-copied/op and
//     wall speedup, and gating zero steady-state allocations per
//     durable RPC (event pool + InlineFunction + payload-pool slabs
//     all flat between an N-op and a 2N-op run); plus the pinned cost
//     of a fabric link-table lookup (flat open addressing — the
//     per-packet hot path).
//  6. Partitioned engine scaling (PR 7, DESIGN.md §7.5): a 64-node
//     durable workload at --engine-threads 1/2/4/8, asserting every
//     run is byte-identical to the serial engine and recording
//     events/sec + speedup per thread count (speedup is only
//     meaningful when the host has the cores; hw_concurrency lands in
//     the JSON so the CI gate can tell).
//
// Flags: --events=N (default 1000000), --ops=N (micro cell, default
//        2000), --pingers=N (concurrently pending events, default
//        1024), --jobs=N (sweep comparison, 0 = clamp(cores,2,4),
//        default 0), --scale-nodes=N (scaling section, default 64),
//        --scale-ops=N (default 4x --ops),
//        --out=PATH (default BENCH_engine.json),
//        --out-dataplane=PATH (default BENCH_dataplane.json)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include <thread>

#include "bench_util/flags.hpp"
#include "bench_util/json.hpp"
#include "bench_util/micro.hpp"
#include "bench_util/sweep.hpp"
#include "bench_util/table.hpp"
#include "net/fabric.hpp"
#include "sim/inline_function.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "trace/tracer.hpp"

using namespace prdma;

namespace {

/// The event engine as it was before the InlineTask/slab rewrite: a
/// std::function per event, stored inside the binary-heap array. Kept
/// here so the speedup is measured against the real predecessor, not a
/// strawman.
class LegacyEngine {
 public:
  [[nodiscard]] sim::SimTime now() const { return now_; }

  void schedule(sim::SimTime delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  void schedule_at(sim::SimTime t, std::function<void()> fn) {
    if (t < now_) t = now_;
    heap_.push_back(Event{t, next_seq_++, std::move(fn)});
    sift_up(heap_.size() - 1);
  }

  bool step() {
    if (heap_.empty()) return false;
    Event ev = std::move(heap_.front());
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    now_ = ev.time;
    ++executed_;
    ev.fn();
    return true;
  }

  void run() {
    while (step()) {
    }
  }

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

 private:
  struct Event {
    sim::SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
    [[nodiscard]] bool before(const Event& o) const {
      return time != o.time ? time < o.time : seq < o.seq;
    }
  };

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!heap_[i].before(heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t smallest = i;
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      if (l < n && heap_[l].before(heap_[smallest])) smallest = l;
      if (r < n && heap_[r].before(heap_[smallest])) smallest = r;
      if (smallest == i) break;
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  sim::SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::vector<Event> heap_;
};

/// Capture ballast matching the RNIC transmit/DMA lambdas (a Packet by
/// value plus bookkeeping): big enough that std::function must heap-
/// allocate, comfortably inside the InlineTask budget.
struct Pad {
  unsigned char bytes[96] = {};
};

template <typename Engine>
void ping(Engine& eng, std::uint64_t& remaining, const Pad& pad) {
  if (remaining == 0) return;
  --remaining;
  eng.schedule((remaining % 97) + 1, [&eng, &remaining, pad] {
    ping(eng, remaining, pad);
  });
}

/// Drives `total` pinger events through `eng` with `pingers` of them
/// concurrently pending (the bench workloads keep hundreds to
/// thousands of events in flight), returns wall seconds.
template <typename Engine>
double run_pingers(Engine& eng, std::uint64_t total, std::uint64_t pingers) {
  std::uint64_t remaining = total;
  const Pad pad;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < pingers && remaining > 0; ++i) {
    ping(eng, remaining, pad);
  }
  eng.run();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  if (flags.help_requested()) {
    flags.print_help();
    return 0;
  }
  const std::uint64_t events = flags.u64("events", 1'000'000);
  const std::uint64_t pingers = flags.u64("pingers", 1024);
  const std::uint64_t micro_ops = flags.u64("ops", 2000);
  const std::size_t sweep_jobs =
      flags.u64("jobs", 0) == 0 ? bench::SweepRunner::default_jobs()
                                : static_cast<std::size_t>(flags.u64("jobs", 0));
  const std::uint64_t scale_nodes = flags.u64("scale-nodes", 64);
  const std::uint64_t scale_ops = flags.u64("scale-ops", micro_ops * 4);
  const std::string out = flags.str("out", "BENCH_engine.json");
  const std::string out_dataplane =
      flags.str("out-dataplane", "BENCH_dataplane.json");

  std::printf("engine_perf — event-engine + sweep-runner throughput\n\n");

  // ---- 1. raw engine: new vs legacy -------------------------------
  sim::Simulator warm;
  (void)run_pingers(warm, events / 4, pingers);  // warm the allocator + caches

  sim::Simulator fresh;
  (void)run_pingers(fresh, events / 4, pingers);  // grow slab/heap to high-water

  LegacyEngine legacy;
  (void)run_pingers(legacy, events / 4, pingers);

  // Steady state: slots recycle, captures stay inline — both counters
  // must be flat across every measured window. Wall time is the best of
  // five windows, with the two engines' windows interleaved so a noisy
  // neighbour or frequency drift hits both alike; min is the standard
  // estimator for a deterministic workload.
  constexpr int kWindows = 5;
  const std::uint64_t pool0 = fresh.pool_allocations();
  const std::uint64_t heap0 = sim::inline_fn_heap_allocs();
  double new_secs = 1e300;
  double legacy_secs = 1e300;
  for (int r = 0; r < kWindows; ++r) {
    new_secs = std::min(new_secs, run_pingers(fresh, events, pingers));
    legacy_secs = std::min(legacy_secs, run_pingers(legacy, events, pingers));
  }
  const std::uint64_t steady_allocs = (fresh.pool_allocations() - pool0) +
                                      (sim::inline_fn_heap_allocs() - heap0);

  const double new_eps = static_cast<double>(events) / new_secs;
  const double legacy_eps = static_cast<double>(events) / legacy_secs;
  const double allocs_per_event = static_cast<double>(steady_allocs) /
                                  static_cast<double>(kWindows * events);

  bench::TablePrinter engine({"Engine", "events/sec", "allocs/event"});
  engine.add_row({"slab+InlineTask (this PR)",
                  bench::TablePrinter::num(new_eps / 1e6, 2) + "M",
                  bench::TablePrinter::num(allocs_per_event, 6)});
  engine.add_row({"std::function heap (pre-PR)",
                  bench::TablePrinter::num(legacy_eps / 1e6, 2) + "M",
                  ">= 1 (by construction)"});
  engine.print();
  std::printf("speedup vs legacy: %.2fx\n\n", new_eps / legacy_eps);

  // ---- 2. reference micro cell + tracer overhead ------------------
  // Same cell at every tracer depth. kOff is the zero-allocs reference;
  // kCounters (the default of every micro cell) and kFull must match
  // its heap-fallback count exactly — recording is preallocated — and
  // the wall-clock delta over the records folded in is the per-span
  // overhead the tracing layer charges (DESIGN.md §7.2).
  bench::MicroConfig mc;
  mc.object_size = 1024;
  mc.ops = micro_ops;
  mc.read_ratio = 0.0;

  const auto timed_cell = [&mc](trace::Mode mode, double& secs,
                                std::uint64_t& fallbacks) {
    mc.trace_mode = mode;
    const std::uint64_t h0 = sim::inline_fn_heap_allocs();
    const auto t0 = std::chrono::steady_clock::now();
    auto res = bench::run_micro(rpcs::System::kWFlushRpc, mc);
    secs = wall_seconds_since(t0);
    fallbacks = sim::inline_fn_heap_allocs() - h0;
    return res;
  };

  double micro_secs = 0, counters_secs = 0, full_secs = 0;
  std::uint64_t micro_fallbacks = 0, counters_fallbacks = 0,
                full_fallbacks = 0;
  const auto mres = timed_cell(trace::Mode::kOff, micro_secs, micro_fallbacks);
  const auto cres =
      timed_cell(trace::Mode::kCounters, counters_secs, counters_fallbacks);
  const auto fres = timed_cell(trace::Mode::kFull, full_secs, full_fallbacks);
  mc.trace_mode = trace::Mode::kCounters;  // back to the default

  const double micro_eps = static_cast<double>(mres.sim_events) / micro_secs;
  const auto records = static_cast<double>(
      std::max<std::uint64_t>(fres.breakdown.total_samples(), 1));
  const double counters_span_ns =
      std::max(0.0, (counters_secs - micro_secs) * 1e9 / records);
  const double full_span_ns =
      std::max(0.0, (full_secs - micro_secs) * 1e9 / records);

  std::printf("reference micro cell (WFlush-RPC, 1KB writes, %llu ops):\n",
              static_cast<unsigned long long>(micro_ops));
  std::printf("  %llu events in %.3fs -> %.2fM events/sec, "
              "%llu heap fallbacks\n",
              static_cast<unsigned long long>(mres.sim_events), micro_secs,
              micro_eps / 1e6,
              static_cast<unsigned long long>(micro_fallbacks));
  std::printf("  tracer overhead over %.0f records: counters %+.1f ns/span "
              "(%llu fallbacks), full %+.1f ns/span (%llu fallbacks)\n",
              records, counters_span_ns,
              static_cast<unsigned long long>(counters_fallbacks),
              full_span_ns, static_cast<unsigned long long>(full_fallbacks));

  // Tracing must be an observer: the simulation itself is unchanged at
  // any depth, and recording never falls back to the heap.
  const bool trace_inert =
      mres.sim_events == cres.sim_events && mres.sim_events == fres.sim_events &&
      mres.duration == cres.duration && mres.duration == fres.duration &&
      mres.ops_completed == cres.ops_completed &&
      mres.ops_completed == fres.ops_completed &&
      counters_fallbacks == micro_fallbacks && full_fallbacks == micro_fallbacks;
  std::printf("  tracing inert (identical sim, no extra fallbacks): %s\n\n",
              trace_inert ? "yes" : "NO — DIVERGED");

  // ---- 3. sweep wall-clock: jobs=1 vs jobs=N ----------------------
  std::vector<bench::MicroCell> cells;
  for (const rpcs::System sys : rpcs::evaluation_lineup(1024)) {
    bench::MicroConfig cfg;
    cfg.object_size = 1024;
    cfg.ops = micro_ops;
    cells.push_back({sys, cfg});
  }

  bench::SweepRunner serial(1);
  const auto s0 = std::chrono::steady_clock::now();
  const auto serial_res = bench::run_micro_cells(serial, cells);
  const double serial_secs = wall_seconds_since(s0);

  bench::SweepRunner parallel(sweep_jobs);
  const auto p0 = std::chrono::steady_clock::now();
  const auto parallel_res = bench::run_micro_cells(parallel, cells);
  const double parallel_secs = wall_seconds_since(p0);

  bool identical = serial_res.size() == parallel_res.size();
  for (std::size_t i = 0; identical && i < serial_res.size(); ++i) {
    identical = serial_res[i].kops == parallel_res[i].kops &&
                serial_res[i].ops_completed == parallel_res[i].ops_completed &&
                serial_res[i].duration == parallel_res[i].duration &&
                serial_res[i].sim_events == parallel_res[i].sim_events;
  }

  std::printf("sweep of %zu cells: jobs=1 %.2fs, jobs=%zu %.2fs "
              "(%.2fx), results %s\n",
              cells.size(), serial_secs, sweep_jobs, parallel_secs,
              serial_secs / parallel_secs,
              identical ? "identical" : "DIVERGED");
  const std::vector<double> serial_cell_secs = serial.cell_seconds();
  const std::vector<double> parallel_cell_secs = parallel.cell_seconds();

  // ---- 4. data plane: content modes, copies, steady-state allocs --
  struct PlaneCell {
    std::uint64_t size = 0;
    bench::MicroResult res;
    double secs = 0.0;
    std::uint64_t fn_allocs = 0;
  };
  const auto run_plane = [&micro_ops](std::uint64_t size, mem::ContentMode mode,
                                      std::uint64_t ops = 0) {
    bench::MicroConfig cfg;
    cfg.object_size = static_cast<std::uint32_t>(size);
    cfg.ops = ops == 0 ? micro_ops : ops;
    cfg.read_ratio = 0.0;
    cfg.content_mode = mode;
    PlaneCell c;
    c.size = size;
    const std::uint64_t h0 = sim::inline_fn_heap_allocs();
    const auto t0 = std::chrono::steady_clock::now();
    c.res = bench::run_micro(rpcs::System::kWFlushRpc, cfg);
    c.secs = wall_seconds_since(t0);
    c.fn_allocs = sim::inline_fn_heap_allocs() - h0;
    return c;
  };

  constexpr std::uint64_t kPlaneSizes[] = {64, 1024, 16384};
  bench::TablePrinter plane(
      {"size", "mode", "wall s", "copied B/op", "kops", "speedup"});
  bench::Json plane_cells = bench::Json::array();
  bool plane_parity = true;
  double shadow_speedup_1k = 0.0;
  for (const std::uint64_t size : kPlaneSizes) {
    const PlaneCell full = run_plane(size, mem::ContentMode::kFull);
    const PlaneCell shadow = run_plane(size, mem::ContentMode::kShadow);
    // The whole point of kShadow: identical simulation, fewer copies.
    const bool same =
        full.res.ops_completed == shadow.res.ops_completed &&
        full.res.duration == shadow.res.duration &&
        full.res.sim_events == shadow.res.sim_events &&
        full.res.kops == shadow.res.kops &&
        full.res.latency.mean() == shadow.res.latency.mean() &&
        full.res.latency.p99() == shadow.res.latency.p99();
    plane_parity = plane_parity && same;
    const double speedup = full.secs / shadow.secs;
    if (size == 1024) shadow_speedup_1k = speedup;
    for (const PlaneCell* c : {&full, &shadow}) {
      const bool is_shadow = c == &shadow;
      const double ops = static_cast<double>(
          std::max<std::uint64_t>(c->res.ops_completed, 1));
      const double copied_per_op =
          static_cast<double>(c->res.bytes_copied) / ops;
      plane.add_row({std::to_string(size), is_shadow ? "shadow" : "full",
                     bench::TablePrinter::num(c->secs, 3),
                     bench::TablePrinter::num(copied_per_op, 0),
                     bench::TablePrinter::num(c->res.kops, 1),
                     is_shadow ? bench::TablePrinter::num(speedup, 2) + "x"
                               : "-"});
      bench::Json cell = bench::Json::object();
      cell.set("object_size", bench::Json::num(size))
          .set("mode", bench::Json::str(is_shadow ? "shadow" : "full"))
          .set("wall_secs", bench::Json::num(c->secs))
          .set("events_per_sec",
               bench::Json::num(static_cast<double>(c->res.sim_events) /
                                c->secs))
          .set("kops", bench::Json::num(c->res.kops))
          .set("bytes_copied", bench::Json::num(c->res.bytes_copied))
          .set("bytes_copied_per_op", bench::Json::num(copied_per_op))
          .set("pool_acquires", bench::Json::num(c->res.pool.acquires))
          .set("pool_outstanding_peak",
               bench::Json::num(c->res.pool.outstanding_peak))
          .set("pool_slab_bytes", bench::Json::num(c->res.pool.slab_bytes))
          .set("pool_oversize_allocs",
               bench::Json::num(c->res.pool.oversize_allocs))
          .set("heap_fallbacks", bench::Json::num(c->fn_allocs))
          .set("stats_match_other_mode", bench::Json::boolean(same));
      plane_cells.push(std::move(cell));
    }
  }
  std::printf("\ndata plane (WFlush-RPC, write-only, %llu ops):\n",
              static_cast<unsigned long long>(micro_ops));
  plane.print();

  // Steady state: an extra N ops must allocate nothing — no event-pool
  // refill, no InlineFunction heap fallback, no new payload slab. The
  // base run must get well past the 100 ms retransmit horizon (every
  // packet pins an event slot that long), or the slot slab is still
  // ramping to its high-water mark and the delta reads as a leak.
  const std::uint64_t probe_ops = std::max<std::uint64_t>(micro_ops, 30'000);
  const PlaneCell base =
      run_plane(1024, mem::ContentMode::kShadow, probe_ops);
  const PlaneCell twice =
      run_plane(1024, mem::ContentMode::kShadow, probe_ops * 2);
  const std::uint64_t extra_ops =
      twice.res.ops_completed - base.res.ops_completed;
  const std::uint64_t steady_pool =
      twice.res.sim_pool_allocs - base.res.sim_pool_allocs;
  const std::uint64_t steady_fn = twice.fn_allocs - base.fn_allocs;
  const std::uint64_t steady_slab =
      twice.res.pool.slab_bytes - base.res.pool.slab_bytes;
  const bool plane_steady =
      steady_pool == 0 && steady_fn == 0 && steady_slab == 0;
  const double allocs_per_rpc =
      static_cast<double>(steady_pool + steady_fn) /
      static_cast<double>(std::max<std::uint64_t>(extra_ops, 1));
  std::printf("  steady-state allocs/durable RPC over %llu extra ops: %.6f "
              "(event pool +%llu, fn heap +%llu, payload slab +%llu B) %s\n",
              static_cast<unsigned long long>(extra_ops), allocs_per_rpc,
              static_cast<unsigned long long>(steady_pool),
              static_cast<unsigned long long>(steady_fn),
              static_cast<unsigned long long>(steady_slab),
              plane_steady ? "OK" : "REGRESSED");
  std::printf("  mode parity (stats byte-identical shadow vs full): %s\n\n",
              plane_parity ? "yes" : "NO — DIVERGED");

  // Link-table lookup pin: Fabric::state() is hit once per packet, so
  // its cost is a first-order term of the data plane. The flat
  // open-addressing table replaced a std::map (red-black walk per
  // send); pin the absolute ns/lookup so a regression to pointer
  // chasing is visible in review.
  double link_lookup_ns = 0.0;
  {
    sim::Simulator lsim;
    sim::Rng lrng(1);
    net::Fabric lf(lsim, lrng, net::LinkParams{});
    constexpr std::uint32_t kLinkNodes = 64;
    for (std::uint32_t from = 0; from < kLinkNodes; ++from) {
      for (std::uint32_t to = 0; to < kLinkNodes; ++to) {
        if (from != to) lf.direct_link(from, to).propagation = 1000 + from + to;
      }
    }
    const std::uint64_t iters = 2'000'000;
    std::uint64_t acc = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) {
      const auto from = static_cast<std::uint32_t>(i % kLinkNodes);
      auto to = static_cast<std::uint32_t>((i * 7 + 1) % kLinkNodes);
      if (to == from) to = (to + 1) % kLinkNodes;
      acc += lf.direct_link(from, to).propagation;
    }
    link_lookup_ns =
        wall_seconds_since(t0) * 1e9 / static_cast<double>(iters);
    std::printf("  link-table lookup (%u nodes, %llu hits): %.1f ns/lookup "
                "(checksum %llu)\n\n",
                kLinkNodes * (kLinkNodes - 1),
                static_cast<unsigned long long>(iters), link_lookup_ns,
                static_cast<unsigned long long>(acc % 1000));
  }

  // ---- 5. partitioned engine: multi-node scaling ------------------
  // One durable server + (scale_nodes - 1) clients, zero link noise:
  // the partitioned engine must reproduce the serial run bit for bit
  // at every thread count, and on a multicore host turn the extra
  // threads into simulated events per wall second.
  const auto run_scaled = [&scale_nodes, &scale_ops](unsigned threads,
                                                     double& secs) {
    bench::MicroConfig cfg;
    cfg.object_size = 1024;
    cfg.ops = scale_ops;
    cfg.read_ratio = 0.0;
    cfg.clients = static_cast<std::size_t>(scale_nodes) - 1;
    cfg.jitter_sigma = 0.0;
    cfg.engine_threads = threads;
    const auto t0 = std::chrono::steady_clock::now();
    auto res = bench::run_micro(rpcs::System::kWFlushRpc, cfg);
    secs = wall_seconds_since(t0);
    return res;
  };

  const unsigned hw_threads =
      std::max(1u, std::thread::hardware_concurrency());
  constexpr unsigned kScaleThreads[] = {1, 2, 4, 8};
  std::printf("partitioned engine (%llu nodes, %llu ops, WFlush-RPC, "
              "host has %u hardware threads):\n",
              static_cast<unsigned long long>(scale_nodes),
              static_cast<unsigned long long>(scale_ops), hw_threads);
  bench::TablePrinter scaling(
      {"threads", "wall s", "Mevents/s", "speedup", "identical"});
  bench::Json scaling_rows = bench::Json::array();
  double scale_serial_secs = 0.0;
  bench::MicroResult scale_serial;
  std::uint64_t partitioned_epochs = 0;
  bool scaling_identical = true;
  for (const unsigned t : kScaleThreads) {
    double secs = 0.0;
    const bench::MicroResult res = run_scaled(t, secs);
    if (t == 1) {
      scale_serial = res;
      scale_serial_secs = secs;
    }
    // The whole contract: every model-visible stat equals the serial
    // engine's, no matter how many workers advanced the partitions.
    bool same = res.duration == scale_serial.duration &&
                      res.ops_completed == scale_serial.ops_completed &&
                      res.sim_events == scale_serial.sim_events &&
                      res.kops == scale_serial.kops &&
                      res.latency.sum() == scale_serial.latency.sum() &&
                      res.durable_latency.sum() ==
                          scale_serial.durable_latency.sum() &&
                      res.server.ops_processed ==
                          scale_serial.server.ops_processed;
    // The epoch count is part of the deterministic schedule of a
    // layout: every partitioned run (threads > 1 shards per node
    // here; the serial run is one partition with no epochs) must
    // agree on it exactly.
    if (t > 1) {
      if (partitioned_epochs == 0) partitioned_epochs = res.engine_epochs;
      same = same && res.engine_epochs == partitioned_epochs;
    }
    scaling_identical = scaling_identical && same;
    const double eps = static_cast<double>(res.sim_events) / secs;
    const double speedup = scale_serial_secs / secs;
    scaling.add_row({std::to_string(t), bench::TablePrinter::num(secs, 3),
                     bench::TablePrinter::num(eps / 1e6, 2),
                     bench::TablePrinter::num(speedup, 2) + "x",
                     same ? "yes" : "NO"});
    bench::Json row = bench::Json::object();
    row.set("threads", bench::Json::num(static_cast<std::uint64_t>(t)))
        .set("wall_secs", bench::Json::num(secs))
        .set("events_per_sec", bench::Json::num(eps))
        .set("speedup", bench::Json::num(speedup))
        .set("partitions", bench::Json::num(res.engine_partitions))
        .set("epochs", bench::Json::num(res.engine_epochs))
        .set("barrier_wall_ns", bench::Json::num(res.engine_barrier_wall_ns))
        .set("identical", bench::Json::boolean(same));
    scaling_rows.push(std::move(row));
  }
  scaling.print();
  std::printf("  byte-identical to serial at every thread count: %s\n\n",
              scaling_identical ? "yes" : "NO — DIVERGED");

  // ---- 6. JSON record ---------------------------------------------
  bench::Json doc = bench::Json::object();
  doc.set("bench", bench::Json::str("engine_perf"))
      .set("events", bench::Json::num(events))
      .set("events_per_sec", bench::Json::num(new_eps))
      .set("events_per_sec_legacy", bench::Json::num(legacy_eps))
      .set("speedup_vs_legacy", bench::Json::num(new_eps / legacy_eps))
      .set("steady_state_allocs_per_event", bench::Json::num(allocs_per_event))
      .set("micro_cell_events", bench::Json::num(mres.sim_events))
      .set("micro_cell_events_per_sec", bench::Json::num(micro_eps))
      .set("micro_cell_heap_fallbacks", bench::Json::num(micro_fallbacks))
      .set("tracer_records", bench::Json::num(
               static_cast<std::uint64_t>(records)))
      .set("tracer_counters_ns_per_span", bench::Json::num(counters_span_ns))
      .set("tracer_full_ns_per_span", bench::Json::num(full_span_ns))
      .set("tracer_counters_heap_fallbacks",
           bench::Json::num(counters_fallbacks))
      .set("tracer_full_heap_fallbacks", bench::Json::num(full_fallbacks))
      .set("tracer_inert", bench::Json::boolean(trace_inert))
      .set("sweep_cells", bench::Json::num(
               static_cast<std::uint64_t>(cells.size())))
      .set("sweep_jobs", bench::Json::num(
               static_cast<std::uint64_t>(sweep_jobs)))
      .set("sweep_serial_secs", bench::Json::num(serial_secs))
      .set("sweep_parallel_secs", bench::Json::num(parallel_secs))
      .set("sweep_speedup", bench::Json::num(serial_secs / parallel_secs))
      .set("sweep_identical", bench::Json::boolean(identical));
  bench::Json cell_secs_serial = bench::Json::array();
  for (const double s : serial_cell_secs) {
    cell_secs_serial.push(bench::Json::num(s));
  }
  bench::Json cell_secs_parallel = bench::Json::array();
  for (const double s : parallel_cell_secs) {
    cell_secs_parallel.push(bench::Json::num(s));
  }
  doc.set("sweep_cell_secs_serial", std::move(cell_secs_serial))
      .set("sweep_cell_secs_parallel", std::move(cell_secs_parallel));
  bench::Json scaling_doc = bench::Json::object();
  scaling_doc.set("nodes", bench::Json::num(scale_nodes))
      .set("ops", bench::Json::num(scale_ops))
      .set("hw_concurrency", bench::Json::num(static_cast<std::uint64_t>(hw_threads)))
      .set("identical", bench::Json::boolean(scaling_identical))
      .set("rows", std::move(scaling_rows));
  doc.set("engine_scaling", std::move(scaling_doc));
  if (!bench::emit_json(out, doc)) {
    std::printf("\nfailed to open %s for writing\n", out.c_str());
    return 2;
  }
  std::printf("\nwrote %s\n", out.c_str());

  bench::Json dp = bench::Json::object();
  dp.set("bench", bench::Json::str("dataplane"))
      .set("ops", bench::Json::num(micro_ops))
      .set("cells", std::move(plane_cells))
      .set("mode_parity", bench::Json::boolean(plane_parity))
      .set("shadow_speedup_1k", bench::Json::num(shadow_speedup_1k))
      .set("steady_extra_ops", bench::Json::num(extra_ops))
      .set("steady_allocs_per_rpc", bench::Json::num(allocs_per_rpc))
      .set("steady_event_pool_allocs", bench::Json::num(steady_pool))
      .set("steady_fn_heap_allocs", bench::Json::num(steady_fn))
      .set("steady_payload_slab_bytes", bench::Json::num(steady_slab))
      .set("steady_ok", bench::Json::boolean(plane_steady))
      .set("link_lookup_ns_per_op", bench::Json::num(link_lookup_ns));
  if (!bench::emit_json(out_dataplane, dp)) {
    std::printf("failed to open %s for writing\n", out_dataplane.c_str());
    return 2;
  }
  std::printf("wrote %s\n", out_dataplane.c_str());

  return identical && trace_inert && steady_allocs == 0 && plane_parity &&
                 plane_steady && scaling_identical
             ? 0
             : 1;
}
