// Event-engine and sweep-runner performance proof (tracked from PR 2
// onward via BENCH_engine.json):
//
//  1. Raw engine throughput — a self-rescheduling "pinger" workload
//     whose capture mimics the RNIC hot path (~112 B, defeats
//     std::function's small-buffer optimisation) — on the current
//     slab/InlineTask engine vs the pre-PR engine, which is kept here
//     verbatim (std::function per event, events stored inside the heap
//     array) as LegacyEngine.
//  2. Steady-state allocations/event of the current engine, from the
//     instrumented counters (Simulator::pool_allocations and
//     sim::inline_fn_heap_allocs): expected 0 after warm-up.
//  3. A reference micro cell (WFlush-RPC, 1 KB writes): simulated
//     events replayed per wall-clock second, plus its heap-fallback
//     count (expected 0).
//  4. SweepRunner wall-clock at --jobs=1 vs --jobs=N on a small grid,
//     asserting the merged results are identical.
//
// Flags: --events=N (default 1000000), --ops=N (micro cell, default
//        2000), --pingers=N (concurrently pending events, default
//        1024), --jobs=N (sweep comparison, 0 = cores, default 0),
//        --out=PATH (default BENCH_engine.json)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench_util/flags.hpp"
#include "bench_util/json.hpp"
#include "bench_util/micro.hpp"
#include "bench_util/sweep.hpp"
#include "bench_util/table.hpp"
#include "sim/inline_function.hpp"
#include "sim/simulator.hpp"
#include "trace/tracer.hpp"

using namespace prdma;

namespace {

/// The event engine as it was before the InlineTask/slab rewrite: a
/// std::function per event, stored inside the binary-heap array. Kept
/// here so the speedup is measured against the real predecessor, not a
/// strawman.
class LegacyEngine {
 public:
  [[nodiscard]] sim::SimTime now() const { return now_; }

  void schedule(sim::SimTime delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  void schedule_at(sim::SimTime t, std::function<void()> fn) {
    if (t < now_) t = now_;
    heap_.push_back(Event{t, next_seq_++, std::move(fn)});
    sift_up(heap_.size() - 1);
  }

  bool step() {
    if (heap_.empty()) return false;
    Event ev = std::move(heap_.front());
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    now_ = ev.time;
    ++executed_;
    ev.fn();
    return true;
  }

  void run() {
    while (step()) {
    }
  }

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

 private:
  struct Event {
    sim::SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
    [[nodiscard]] bool before(const Event& o) const {
      return time != o.time ? time < o.time : seq < o.seq;
    }
  };

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!heap_[i].before(heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t smallest = i;
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      if (l < n && heap_[l].before(heap_[smallest])) smallest = l;
      if (r < n && heap_[r].before(heap_[smallest])) smallest = r;
      if (smallest == i) break;
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  sim::SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::vector<Event> heap_;
};

/// Capture ballast matching the RNIC transmit/DMA lambdas (a Packet by
/// value plus bookkeeping): big enough that std::function must heap-
/// allocate, comfortably inside the InlineTask budget.
struct Pad {
  unsigned char bytes[96] = {};
};

template <typename Engine>
void ping(Engine& eng, std::uint64_t& remaining, const Pad& pad) {
  if (remaining == 0) return;
  --remaining;
  eng.schedule((remaining % 97) + 1, [&eng, &remaining, pad] {
    ping(eng, remaining, pad);
  });
}

/// Drives `total` pinger events through `eng` with `pingers` of them
/// concurrently pending (the bench workloads keep hundreds to
/// thousands of events in flight), returns wall seconds.
template <typename Engine>
double run_pingers(Engine& eng, std::uint64_t total, std::uint64_t pingers) {
  std::uint64_t remaining = total;
  const Pad pad;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < pingers && remaining > 0; ++i) {
    ping(eng, remaining, pad);
  }
  eng.run();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  if (flags.help_requested()) {
    flags.print_help();
    return 0;
  }
  const std::uint64_t events = flags.u64("events", 1'000'000);
  const std::uint64_t pingers = flags.u64("pingers", 1024);
  const std::uint64_t micro_ops = flags.u64("ops", 2000);
  const std::size_t sweep_jobs =
      flags.u64("jobs", 0) == 0 ? bench::SweepRunner::default_jobs()
                                : static_cast<std::size_t>(flags.u64("jobs", 0));
  const std::string out = flags.str("out", "BENCH_engine.json");

  std::printf("engine_perf — event-engine + sweep-runner throughput\n\n");

  // ---- 1. raw engine: new vs legacy -------------------------------
  sim::Simulator warm;
  (void)run_pingers(warm, events / 4, pingers);  // warm the allocator + caches

  sim::Simulator fresh;
  (void)run_pingers(fresh, events / 4, pingers);  // grow slab/heap to high-water

  LegacyEngine legacy;
  (void)run_pingers(legacy, events / 4, pingers);

  // Steady state: slots recycle, captures stay inline — both counters
  // must be flat across every measured window. Wall time is the best of
  // five windows, with the two engines' windows interleaved so a noisy
  // neighbour or frequency drift hits both alike; min is the standard
  // estimator for a deterministic workload.
  constexpr int kWindows = 5;
  const std::uint64_t pool0 = fresh.pool_allocations();
  const std::uint64_t heap0 = sim::inline_fn_heap_allocs();
  double new_secs = 1e300;
  double legacy_secs = 1e300;
  for (int r = 0; r < kWindows; ++r) {
    new_secs = std::min(new_secs, run_pingers(fresh, events, pingers));
    legacy_secs = std::min(legacy_secs, run_pingers(legacy, events, pingers));
  }
  const std::uint64_t steady_allocs = (fresh.pool_allocations() - pool0) +
                                      (sim::inline_fn_heap_allocs() - heap0);

  const double new_eps = static_cast<double>(events) / new_secs;
  const double legacy_eps = static_cast<double>(events) / legacy_secs;
  const double allocs_per_event = static_cast<double>(steady_allocs) /
                                  static_cast<double>(kWindows * events);

  bench::TablePrinter engine({"Engine", "events/sec", "allocs/event"});
  engine.add_row({"slab+InlineTask (this PR)",
                  bench::TablePrinter::num(new_eps / 1e6, 2) + "M",
                  bench::TablePrinter::num(allocs_per_event, 6)});
  engine.add_row({"std::function heap (pre-PR)",
                  bench::TablePrinter::num(legacy_eps / 1e6, 2) + "M",
                  ">= 1 (by construction)"});
  engine.print();
  std::printf("speedup vs legacy: %.2fx\n\n", new_eps / legacy_eps);

  // ---- 2. reference micro cell + tracer overhead ------------------
  // Same cell at every tracer depth. kOff is the zero-allocs reference;
  // kCounters (the default of every micro cell) and kFull must match
  // its heap-fallback count exactly — recording is preallocated — and
  // the wall-clock delta over the records folded in is the per-span
  // overhead the tracing layer charges (DESIGN.md §7.2).
  bench::MicroConfig mc;
  mc.object_size = 1024;
  mc.ops = micro_ops;
  mc.read_ratio = 0.0;

  const auto timed_cell = [&mc](trace::Mode mode, double& secs,
                                std::uint64_t& fallbacks) {
    mc.trace_mode = mode;
    const std::uint64_t h0 = sim::inline_fn_heap_allocs();
    const auto t0 = std::chrono::steady_clock::now();
    auto res = bench::run_micro(rpcs::System::kWFlushRpc, mc);
    secs = wall_seconds_since(t0);
    fallbacks = sim::inline_fn_heap_allocs() - h0;
    return res;
  };

  double micro_secs = 0, counters_secs = 0, full_secs = 0;
  std::uint64_t micro_fallbacks = 0, counters_fallbacks = 0,
                full_fallbacks = 0;
  const auto mres = timed_cell(trace::Mode::kOff, micro_secs, micro_fallbacks);
  const auto cres =
      timed_cell(trace::Mode::kCounters, counters_secs, counters_fallbacks);
  const auto fres = timed_cell(trace::Mode::kFull, full_secs, full_fallbacks);
  mc.trace_mode = trace::Mode::kCounters;  // back to the default

  const double micro_eps = static_cast<double>(mres.sim_events) / micro_secs;
  const auto records = static_cast<double>(
      std::max<std::uint64_t>(fres.breakdown.total_samples(), 1));
  const double counters_span_ns =
      std::max(0.0, (counters_secs - micro_secs) * 1e9 / records);
  const double full_span_ns =
      std::max(0.0, (full_secs - micro_secs) * 1e9 / records);

  std::printf("reference micro cell (WFlush-RPC, 1KB writes, %llu ops):\n",
              static_cast<unsigned long long>(micro_ops));
  std::printf("  %llu events in %.3fs -> %.2fM events/sec, "
              "%llu heap fallbacks\n",
              static_cast<unsigned long long>(mres.sim_events), micro_secs,
              micro_eps / 1e6,
              static_cast<unsigned long long>(micro_fallbacks));
  std::printf("  tracer overhead over %.0f records: counters %+.1f ns/span "
              "(%llu fallbacks), full %+.1f ns/span (%llu fallbacks)\n",
              records, counters_span_ns,
              static_cast<unsigned long long>(counters_fallbacks),
              full_span_ns, static_cast<unsigned long long>(full_fallbacks));

  // Tracing must be an observer: the simulation itself is unchanged at
  // any depth, and recording never falls back to the heap.
  const bool trace_inert =
      mres.sim_events == cres.sim_events && mres.sim_events == fres.sim_events &&
      mres.duration == cres.duration && mres.duration == fres.duration &&
      mres.ops_completed == cres.ops_completed &&
      mres.ops_completed == fres.ops_completed &&
      counters_fallbacks == micro_fallbacks && full_fallbacks == micro_fallbacks;
  std::printf("  tracing inert (identical sim, no extra fallbacks): %s\n\n",
              trace_inert ? "yes" : "NO — DIVERGED");

  // ---- 3. sweep wall-clock: jobs=1 vs jobs=N ----------------------
  std::vector<bench::MicroCell> cells;
  for (const rpcs::System sys : rpcs::evaluation_lineup(1024)) {
    bench::MicroConfig cfg;
    cfg.object_size = 1024;
    cfg.ops = micro_ops;
    cells.push_back({sys, cfg});
  }

  bench::SweepRunner serial(1);
  const auto s0 = std::chrono::steady_clock::now();
  const auto serial_res = bench::run_micro_cells(serial, cells);
  const double serial_secs = wall_seconds_since(s0);

  bench::SweepRunner parallel(sweep_jobs);
  const auto p0 = std::chrono::steady_clock::now();
  const auto parallel_res = bench::run_micro_cells(parallel, cells);
  const double parallel_secs = wall_seconds_since(p0);

  bool identical = serial_res.size() == parallel_res.size();
  for (std::size_t i = 0; identical && i < serial_res.size(); ++i) {
    identical = serial_res[i].kops == parallel_res[i].kops &&
                serial_res[i].ops_completed == parallel_res[i].ops_completed &&
                serial_res[i].duration == parallel_res[i].duration &&
                serial_res[i].sim_events == parallel_res[i].sim_events;
  }

  std::printf("sweep of %zu cells: jobs=1 %.2fs, jobs=%zu %.2fs "
              "(%.2fx), results %s\n",
              cells.size(), serial_secs, sweep_jobs, parallel_secs,
              serial_secs / parallel_secs,
              identical ? "identical" : "DIVERGED");

  // ---- 4. JSON record ---------------------------------------------
  bench::Json doc = bench::Json::object();
  doc.set("bench", bench::Json::str("engine_perf"))
      .set("events", bench::Json::num(events))
      .set("events_per_sec", bench::Json::num(new_eps))
      .set("events_per_sec_legacy", bench::Json::num(legacy_eps))
      .set("speedup_vs_legacy", bench::Json::num(new_eps / legacy_eps))
      .set("steady_state_allocs_per_event", bench::Json::num(allocs_per_event))
      .set("micro_cell_events", bench::Json::num(mres.sim_events))
      .set("micro_cell_events_per_sec", bench::Json::num(micro_eps))
      .set("micro_cell_heap_fallbacks", bench::Json::num(micro_fallbacks))
      .set("tracer_records", bench::Json::num(
               static_cast<std::uint64_t>(records)))
      .set("tracer_counters_ns_per_span", bench::Json::num(counters_span_ns))
      .set("tracer_full_ns_per_span", bench::Json::num(full_span_ns))
      .set("tracer_counters_heap_fallbacks",
           bench::Json::num(counters_fallbacks))
      .set("tracer_full_heap_fallbacks", bench::Json::num(full_fallbacks))
      .set("tracer_inert", bench::Json::boolean(trace_inert))
      .set("sweep_cells", bench::Json::num(
               static_cast<std::uint64_t>(cells.size())))
      .set("sweep_jobs", bench::Json::num(
               static_cast<std::uint64_t>(sweep_jobs)))
      .set("sweep_serial_secs", bench::Json::num(serial_secs))
      .set("sweep_parallel_secs", bench::Json::num(parallel_secs))
      .set("sweep_speedup", bench::Json::num(serial_secs / parallel_secs))
      .set("sweep_identical", bench::Json::boolean(identical));
  if (!bench::emit_json(out, doc)) {
    std::printf("\nfailed to open %s for writing\n", out.c_str());
    return 2;
  }
  std::printf("\nwrote %s\n", out.c_str());

  return identical && trace_inert && steady_allocs == 0 ? 0 : 1;
}
