// Reproduces Fig. 8: throughput of all RPC systems under (a) heavy
// load (injected 100 µs processing per request) and (b) light load,
// for 32 B / 1 KB / 64 KB objects. Micro-benchmark per §5.1/§5.2:
// zipfian access, R:W 1:1.
//
// Flags: --ops=N (per cell, default 6000), --seed=N, --jobs=N, --quick

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util/flags.hpp"
#include "bench_util/micro.hpp"
#include "bench_util/report.hpp"
#include "bench_util/sweep.hpp"
#include "bench_util/table.hpp"

using namespace prdma;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv, {},
                           "Fig. 8: RPC throughput, heavy & light load.");
  if (flags.help_requested()) {
    flags.print_help();
    return 0;
  }
  const std::uint64_t ops = flags.u64("ops", flags.flag("quick") ? 1500 : 6000);
  const std::uint64_t seed = flags.u64("seed", 1);
  bench::SweepRunner runner(bench::jobs_from(flags));
  bench::Report report(flags, "fig08_throughput");

  const std::vector<std::uint32_t> sizes = {32, 1024, 64 * 1024};

  std::printf("Fig. 8 — RPC throughput (KOPS), micro-benchmark\n");
  std::printf("zipfian(0.99), R:W 1:1, ops/cell=%llu, seed=%llu\n\n",
              static_cast<unsigned long long>(ops),
              static_cast<unsigned long long>(seed));

  for (const bool heavy : {true, false}) {
    std::printf("(%c) %s load%s\n", heavy ? 'a' : 'b',
                heavy ? "Heavy" : "Light",
                heavy ? " (100us injected processing)" : "");
    const auto lineup = rpcs::evaluation_lineup(32);
    const auto skip = [&](rpcs::System sys, std::uint32_t size) {
      return rpcs::info_of(sys).max_object != 0 &&
             size > rpcs::info_of(sys).max_object;
    };

    std::vector<bench::MicroCell> cells;
    for (const rpcs::System sys : lineup) {
      for (const std::uint32_t size : sizes) {
        if (skip(sys, size)) continue;
        bench::MicroConfig cfg;
        cfg.object_size = size;
        cfg.ops = ops;
        cfg.seed = seed;
        cfg.heavy_load = heavy;
        cfg.durable_pipeline = 2;  // §4.2: senders run ahead of processing
        report.configure(cfg);
        cells.push_back({sys, cfg});
      }
    }
    const auto results = bench::run_micro_cells(runner, cells);

    bench::TablePrinter table({"System", "32B", "1KB", "64KB"});
    std::size_t k = 0;
    for (const rpcs::System sys : lineup) {
      std::vector<std::string> row{std::string(rpcs::name_of(sys))};
      for (const std::uint32_t size : sizes) {
        if (skip(sys, size)) {
          row.push_back("-");
          continue;
        }
        report.add(std::string(rpcs::name_of(sys)) + "/" +
                       std::to_string(size) + "B/" +
                       (heavy ? "heavy" : "light"),
                   results[k]);
        row.push_back(bench::TablePrinter::num(results[k++].kops, 1));
      }
      table.add_row(std::move(row));
    }
    table.print();
    std::printf("\n");
  }
  return report.write() ? 0 : 1;
}
