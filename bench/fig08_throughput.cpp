// Reproduces Fig. 8: throughput of all RPC systems under (a) heavy
// load (injected 100 µs processing per request) and (b) light load,
// for 32 B / 1 KB / 64 KB objects. Micro-benchmark per §5.1/§5.2:
// zipfian access, R:W 1:1.
//
// Flags: --ops=N (per cell, default 6000), --seed=N, --quick

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util/micro.hpp"
#include "bench_util/table.hpp"

using namespace prdma;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const std::uint64_t ops = flags.u64("ops", flags.flag("quick") ? 1500 : 6000);
  const std::uint64_t seed = flags.u64("seed", 1);

  const std::vector<std::uint32_t> sizes = {32, 1024, 64 * 1024};
  const char* size_names[] = {"32B", "1KB", "64KB"};

  std::printf("Fig. 8 — RPC throughput (KOPS), micro-benchmark\n");
  std::printf("zipfian(0.99), R:W 1:1, ops/cell=%llu, seed=%llu\n\n",
              static_cast<unsigned long long>(ops),
              static_cast<unsigned long long>(seed));

  for (const bool heavy : {true, false}) {
    std::printf("(%c) %s load%s\n", heavy ? 'a' : 'b',
                heavy ? "Heavy" : "Light",
                heavy ? " (100us injected processing)" : "");
    bench::TablePrinter table({"System", "32B", "1KB", "64KB"});
    // system -> row of cells
    std::vector<std::vector<std::string>> rows;
    const auto lineup = rpcs::evaluation_lineup(32);
    for (const rpcs::System sys : lineup) {
      std::vector<std::string> row{std::string(rpcs::name_of(sys))};
      for (std::size_t si = 0; si < sizes.size(); ++si) {
        const std::uint32_t size = sizes[si];
        if (rpcs::info_of(sys).max_object != 0 &&
            size > rpcs::info_of(sys).max_object) {
          row.push_back("-");
          continue;
        }
        bench::MicroConfig cfg;
        cfg.object_size = size;
        cfg.ops = ops;
        cfg.seed = seed;
        cfg.heavy_load = heavy;
        cfg.durable_pipeline = 2;  // §4.2: senders run ahead of processing
        const auto res = bench::run_micro(sys, cfg);
        row.push_back(bench::TablePrinter::num(res.kops, 1));
        (void)size_names;
      }
      table.add_row(std::move(row));
    }
    table.print();
    std::printf("\n");
  }
  return 0;
}
