// Rack-scale smoke sweep over the leaf-spine topology (DESIGN.md
// §7.6): one durable server plus (hosts - 1) clients behind per-rack
// ToR switches (16 hosts/rack) meshed to a spine layer, swept from a
// single rack pair up to a 64-host, 4-rack fabric. Every cell runs on
// the serial engine and again on the 2-thread partitioned engine with
// jitter pinned to 0; the sweep fails (exit 1) unless the two are
// byte-identical — the CI determinism gate for switched fabrics.
//
// Flags: --ops=N (total, default 1024; --quick: 256), --seed=N,
//        --pfc, --out=PATH (default BENCH_topology.json), --quick

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util/flags.hpp"
#include "bench_util/json.hpp"
#include "bench_util/micro.hpp"
#include "bench_util/table.hpp"

using namespace prdma;

namespace {

bool model_identical(const bench::MicroResult& a, const bench::MicroResult& b) {
  return a.duration == b.duration && a.ops_completed == b.ops_completed &&
         a.sim_events == b.sim_events && a.kops == b.kops &&
         a.latency.sum() == b.latency.sum() &&
         a.latency.count() == b.latency.count() &&
         a.server.ops_processed == b.server.ops_processed &&
         a.net_switch_hops == b.net_switch_hops &&
         a.net_max_port_queue_ns == b.net_max_port_queue_ns &&
         a.net_pfc_pauses == b.net_pfc_pauses;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  if (flags.help_requested()) {
    flags.print_help();
    return 0;
  }
  const bool quick = flags.flag("quick");
  const std::uint64_t ops = flags.u64("ops", quick ? 256 : 1024);
  const std::uint64_t seed = flags.u64("seed", 1);
  const bool pfc = flags.flag("pfc");
  const std::string out = flags.str("out", "BENCH_topology.json");
  constexpr std::uint32_t kHostsPerRack = 16;
  constexpr std::uint32_t kSpines = 2;

  std::printf("Rack-scale leaf-spine sweep — WFlush-RPC, %llu ops/cell,\n",
              static_cast<unsigned long long>(ops));
  std::printf("%u hosts/rack, %u spines%s; serial vs 2-thread engine\n\n",
              kHostsPerRack, kSpines, pfc ? ", PFC" : "");

  const std::uint32_t host_counts[] = {2, 16, 64};

  bench::TablePrinter table({"Hosts", "Racks", "kops", "avg us", "p99 us",
                             "switch hops", "peak queue us", "identical"});
  bench::Json rows = bench::Json::array();
  bool deterministic = true;
  for (const std::uint32_t hosts : host_counts) {
    const std::uint32_t racks = (hosts + kHostsPerRack - 1) / kHostsPerRack;
    bench::MicroConfig mc;
    mc.objects = 512;
    mc.object_size = 4096;
    mc.ops = ops;
    mc.clients = hosts - 1;
    mc.seed = seed;
    mc.jitter_sigma = 0.0;
    mc.topology.preset = net::TopologyPreset::kLeafSpine;
    mc.topology.hosts_per_rack = kHostsPerRack;
    mc.topology.spines = kSpines;
    mc.topology.pfc = pfc;

    mc.engine_threads = 1;
    const auto serial = bench::run_micro(rpcs::System::kWFlushRpc, mc);
    mc.engine_threads = 2;
    const auto sharded = bench::run_micro(rpcs::System::kWFlushRpc, mc);
    const bool identical = model_identical(serial, sharded);
    deterministic = deterministic && identical;

    table.add_row({std::to_string(hosts), std::to_string(racks),
                   bench::TablePrinter::num(serial.kops, 1),
                   bench::TablePrinter::num(serial.avg_us(), 2),
                   bench::TablePrinter::num(serial.p99_us(), 2),
                   std::to_string(serial.net_switch_hops),
                   bench::TablePrinter::num(
                       static_cast<double>(serial.net_max_port_queue_ns) / 1e3,
                       2),
                   identical ? "yes" : "NO"});

    bench::Json row = bench::Json::object();
    row.set("hosts", bench::Json::num(static_cast<std::uint64_t>(hosts)))
        .set("racks", bench::Json::num(static_cast<std::uint64_t>(racks)))
        .set("kops", bench::Json::num(serial.kops))
        .set("avg_us", bench::Json::num(serial.avg_us()))
        .set("p99_us", bench::Json::num(serial.p99_us()))
        .set("duration", bench::Json::num(serial.duration))
        .set("ops_completed", bench::Json::num(serial.ops_completed))
        .set("switch_hops", bench::Json::num(serial.net_switch_hops))
        .set("max_port_queue_ns",
             bench::Json::num(
                 static_cast<std::uint64_t>(serial.net_max_port_queue_ns)))
        .set("pfc_pauses", bench::Json::num(serial.net_pfc_pauses))
        .set("identical", bench::Json::boolean(identical));
    rows.push(std::move(row));
  }
  table.print();
  std::printf("\n%s\n", deterministic
                            ? "serial and partitioned runs identical"
                            : "DIVERGED: partitioned run differs from serial");

  bench::Json doc = bench::Json::object();
  doc.set("bench", bench::Json::str("topology"))
      .set("ops", bench::Json::num(ops))
      .set("hosts_per_rack",
           bench::Json::num(static_cast<std::uint64_t>(kHostsPerRack)))
      .set("spines", bench::Json::num(static_cast<std::uint64_t>(kSpines)))
      .set("pfc", bench::Json::boolean(pfc))
      .set("rows", std::move(rows))
      .set("deterministic", bench::Json::boolean(deterministic));
  if (!bench::emit_json(out, doc)) {
    std::printf("failed to open %s for writing\n", out.c_str());
    return 2;
  }
  std::printf("wrote %s\n", out.c_str());
  return deterministic ? 0 : 1;
}
