// Rack-scale sweep over the leaf-spine topology (DESIGN.md §7.6/§7.7):
// one durable server plus (hosts - 1) client hosts behind per-rack ToR
// switches (16 hosts/rack) meshed to a spine layer, swept from a
// single rack up to a 512-host, 32-rack fabric. Load is the aggregated
// closed-loop client model (workload::ClientPool): every client host
// stands in for a whole population of virtual clients — 1024 per host
// at 512 hosts, i.e. >half a million closed-loop clients in one cell.
//
// Every cell runs on the serial (1-thread) engine and again at
// --engine-threads 2, 4 and 8 with jitter pinned to 0; the sweep fails
// (exit 1) unless every model stat — including the epoch count — is
// byte-identical across all four runs (the CI determinism gate for
// switched fabrics). The 64-host cell additionally A/Bs the per-node
// vs per-rack partition layouts: per-rack must execute strictly fewer
// epoch barriers per simulated second (trunks are the only cross-
// partition cables, and this sweep stretches them 4x), and on >= 8
// hardware threads it must also be >= 1.3x faster in wall-clock.
//
// Flags: --ops-per-host=N (default 64; --quick: 16), --seed=N, --pfc,
//        --out=PATH (default BENCH_topology.json), --quick

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/flags.hpp"
#include "bench_util/json.hpp"
#include "bench_util/micro.hpp"
#include "bench_util/table.hpp"
#include "net/topology.hpp"

using namespace prdma;

namespace {

constexpr std::uint32_t kHostsPerRack = 16;
constexpr std::uint32_t kSpines = 2;
constexpr double kTrunkPropScale = 4.0;

/// Model-schedule equality: holds across *any* partition layout or
/// thread count (the engine's headline determinism contract).
bool model_identical(const bench::MicroResult& a, const bench::MicroResult& b) {
  return a.duration == b.duration && a.ops_completed == b.ops_completed &&
         a.sim_events == b.sim_events && a.kops == b.kops &&
         a.latency.sum() == b.latency.sum() &&
         a.latency.count() == b.latency.count() &&
         a.server.ops_processed == b.server.ops_processed &&
         a.net_switch_hops == b.net_switch_hops &&
         a.net_max_port_queue_ns == b.net_max_port_queue_ns &&
         a.net_pfc_pauses == b.net_pfc_pauses;
}

/// Same-layout equality additionally pins the engine accounting: the
/// epoch count is a pure function of the schedule and the layout, so
/// it must not move with --engine-threads.
bool run_identical(const bench::MicroResult& a, const bench::MicroResult& b) {
  return model_identical(a, b) && a.engine_partitions == b.engine_partitions &&
         a.engine_epochs == b.engine_epochs;
}

/// Degraded-run equality additionally pins the lossy-fabric accounting
/// (DESIGN.md §7.8): every drop and every go-back-N replay must land
/// identically at any thread count.
bool lossy_identical(const bench::MicroResult& a, const bench::MicroResult& b) {
  return run_identical(a, b) && a.net_drops == b.net_drops &&
         a.rnic_retransmits == b.rnic_retransmits;
}

struct TimedRun {
  bench::MicroResult res;
  double wall_s = 0.0;
};

TimedRun timed_run(const bench::MicroConfig& mc) {
  const auto t0 = std::chrono::steady_clock::now();
  TimedRun r;
  r.res = bench::run_micro(rpcs::System::kWFlushRpc, mc);
  r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count();
  return r;
}

double epochs_per_sim_sec(const bench::MicroResult& r) {
  if (r.duration == 0) return 0.0;
  return static_cast<double>(r.engine_epochs) /
         (static_cast<double>(r.duration) / 1e9);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  if (flags.help_requested()) {
    flags.print_help();
    return 0;
  }
  const bool quick = flags.flag("quick");
  const std::uint64_t ops_per_host = flags.u64("ops-per-host", quick ? 16 : 64);
  const std::uint64_t seed = flags.u64("seed", 1);
  const bool pfc = flags.flag("pfc");
  const std::string out = flags.str("out", "BENCH_topology.json");
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  std::printf(
      "Rack-scale leaf-spine sweep — WFlush-RPC, aggregated closed-loop "
      "clients,\n%llu ops/host, %u hosts/rack, %u spines, trunks x%.0f%s\n"
      "serial vs {2, 4, 8}-thread per-rack engine\n\n",
      static_cast<unsigned long long>(ops_per_host), kHostsPerRack, kSpines,
      kTrunkPropScale, pfc ? ", PFC" : "");

  const std::uint32_t host_counts[] = {2, 64, 128, 512};
  const unsigned thread_counts[] = {2, 4, 8};

  bench::TablePrinter table({"Hosts", "Racks", "Clients", "kops", "avg us",
                             "p99 us", "epochs", "identical"});
  bench::Json rows = bench::Json::array();
  bool deterministic = true;
  for (const std::uint32_t hosts : host_counts) {
    bench::MicroConfig mc;
    mc.objects = 512;
    mc.object_size = 4096;
    mc.clients = hosts - 1;
    mc.ops = ops_per_host * mc.clients;
    mc.seed = seed;
    mc.jitter_sigma = 0.0;
    mc.topology.preset = net::TopologyPreset::kLeafSpine;
    mc.topology.hosts_per_rack = kHostsPerRack;
    mc.topology.spines = kSpines;
    mc.topology.trunk_prop_scale = kTrunkPropScale;
    mc.topology.pfc = pfc;
    // Aggregated closed-loop load: the 512-host cell carries 1024
    // virtual clients per host (523 k clients total).
    mc.clients_per_host = hosts >= 512 ? 1024 : 64;
    mc.client_outstanding = 8;
    mc.client_think_ns = 2000;
    const std::uint32_t racks =
        net::rack_count(mc.topology, hosts);

    mc.engine_threads = 1;
    const TimedRun serial = timed_run(mc);

    bool identical = true;
    bench::Json runs = bench::Json::array();
    {
      bench::Json row = bench::Json::object();
      row.set("threads", bench::Json::num(std::uint64_t{1}))
          .set("wall_s", bench::Json::num(serial.wall_s))
          .set("epochs", bench::Json::num(serial.res.engine_epochs))
          .set("barrier_wall_ns",
               bench::Json::num(serial.res.engine_barrier_wall_ns))
          .set("identical", bench::Json::boolean(true));
      runs.push(std::move(row));
    }
    for (const unsigned threads : thread_counts) {
      mc.engine_threads = threads;
      const TimedRun sharded = timed_run(mc);
      const bool same = run_identical(serial.res, sharded.res);
      identical = identical && same;
      bench::Json row = bench::Json::object();
      row.set("threads", bench::Json::num(static_cast<std::uint64_t>(threads)))
          .set("wall_s", bench::Json::num(sharded.wall_s))
          .set("epochs", bench::Json::num(sharded.res.engine_epochs))
          .set("barrier_wall_ns",
               bench::Json::num(sharded.res.engine_barrier_wall_ns))
          .set("identical", bench::Json::boolean(same));
      runs.push(std::move(row));
    }
    deterministic = deterministic && identical;

    table.add_row({std::to_string(hosts), std::to_string(racks),
                   std::to_string(mc.clients_per_host * mc.clients),
                   bench::TablePrinter::num(serial.res.kops, 1),
                   bench::TablePrinter::num(serial.res.avg_us(), 2),
                   bench::TablePrinter::num(serial.res.p99_us(), 2),
                   std::to_string(serial.res.engine_epochs),
                   identical ? "yes" : "NO"});

    bench::Json row = bench::Json::object();
    row.set("hosts", bench::Json::num(static_cast<std::uint64_t>(hosts)))
        .set("racks", bench::Json::num(static_cast<std::uint64_t>(racks)))
        .set("clients_per_host", bench::Json::num(mc.clients_per_host))
        .set("total_clients",
             bench::Json::num(mc.clients_per_host * mc.clients))
        .set("kops", bench::Json::num(serial.res.kops))
        .set("avg_us", bench::Json::num(serial.res.avg_us()))
        .set("p99_us", bench::Json::num(serial.res.p99_us()))
        .set("duration", bench::Json::num(serial.res.duration))
        .set("ops_completed", bench::Json::num(serial.res.ops_completed))
        .set("switch_hops", bench::Json::num(serial.res.net_switch_hops))
        .set("max_port_queue_ns",
             bench::Json::num(
                 static_cast<std::uint64_t>(serial.res.net_max_port_queue_ns)))
        .set("pfc_pauses", bench::Json::num(serial.res.net_pfc_pauses))
        .set("engine_partitions",
             bench::Json::num(serial.res.engine_partitions))
        .set("engine_epochs", bench::Json::num(serial.res.engine_epochs))
        .set("runs", std::move(runs))
        .set("identical", bench::Json::boolean(identical));
    rows.push(std::move(row));
  }
  table.print();
  std::printf("\n%s\n", deterministic
                            ? "serial and partitioned runs identical"
                            : "DIVERGED: partitioned run differs from serial");

  // ---- per-node vs per-rack layout A/B on the 64-host cell --------
  // Same model, two partition layouts: per-rack must need strictly
  // fewer barriers per simulated second (its lookahead grows from half
  // the shortest cable to half the 4x-stretched trunk), and with real
  // hardware parallelism that turns into wall-clock speedup.
  bench::MicroConfig ab;
  ab.objects = 512;
  ab.object_size = 4096;
  ab.clients = 63;
  ab.ops = ops_per_host * ab.clients;
  ab.seed = seed;
  ab.jitter_sigma = 0.0;
  ab.topology.preset = net::TopologyPreset::kLeafSpine;
  ab.topology.hosts_per_rack = kHostsPerRack;
  ab.topology.spines = kSpines;
  ab.topology.trunk_prop_scale = kTrunkPropScale;
  ab.topology.pfc = pfc;
  ab.clients_per_host = 64;
  ab.client_outstanding = 8;
  ab.client_think_ns = 2000;
  ab.engine_threads = std::min(8u, hw);

  ab.partitioning = sim::EngineConfig::Partitioning::kPerNode;
  const TimedRun per_node = timed_run(ab);
  ab.partitioning = sim::EngineConfig::Partitioning::kPerRack;
  const TimedRun per_rack = timed_run(ab);


  const double pn_rate = epochs_per_sim_sec(per_node.res);
  const double pr_rate = epochs_per_sim_sec(per_rack.res);
  const bool fewer_barriers =
      per_rack.res.engine_epochs < per_node.res.engine_epochs;
  const double speedup =
      per_rack.wall_s > 0.0 ? per_node.wall_s / per_rack.wall_s : 0.0;
  // Wall-clock is host telemetry: the >= 1.3x gate only arms with real
  // hardware parallelism behind the 8 workers and a non-quick run.
  const bool speedup_armed = hw >= 8 && !quick;
  const bool speedup_ok = !speedup_armed || speedup >= 1.3;
  // The two layouts resolve same-timestamp ties differently (the
  // layout is part of the schedule definition — DESIGN.md §7.7), so
  // their model stats agree only approximately; determinism is gated
  // per layout across thread counts above, and per_rack's ops must
  // still all complete.
  const bool work_agrees =
      per_node.res.ops_completed == per_rack.res.ops_completed &&
      per_node.res.server.ops_processed == per_rack.res.server.ops_processed;

  std::printf(
      "\n64-host layout A/B (%u threads): per-node %llu epochs "
      "(%.0f/sim-s, %.2fs wall) vs per-rack %llu epochs (%.0f/sim-s, "
      "%.2fs wall) -> %.2fx%s\n",
      ab.engine_threads,
      static_cast<unsigned long long>(per_node.res.engine_epochs), pn_rate,
      per_node.wall_s,
      static_cast<unsigned long long>(per_rack.res.engine_epochs), pr_rate,
      per_rack.wall_s, speedup,
      speedup_armed ? "" : " (speedup gate not armed)");
  if (!fewer_barriers) {
    std::printf("FAILED: per-rack layout did not reduce barrier count\n");
  }
  if (!work_agrees) {
    std::printf("FAILED: per-node and per-rack layouts completed different "
                "work\n");
  }
  if (speedup_armed && !speedup_ok) {
    std::printf("FAILED: per-rack speedup %.2fx below the 1.3x gate\n",
                speedup);
  }

  bench::Json layout = bench::Json::object();
  layout.set("hosts", bench::Json::num(std::uint64_t{64}))
      .set("threads",
           bench::Json::num(static_cast<std::uint64_t>(ab.engine_threads)))
      .set("per_node_epochs", bench::Json::num(per_node.res.engine_epochs))
      .set("per_rack_epochs", bench::Json::num(per_rack.res.engine_epochs))
      .set("per_node_epochs_per_sim_s", bench::Json::num(pn_rate))
      .set("per_rack_epochs_per_sim_s", bench::Json::num(pr_rate))
      .set("per_node_wall_s", bench::Json::num(per_node.wall_s))
      .set("per_rack_wall_s", bench::Json::num(per_rack.wall_s))
      .set("speedup", bench::Json::num(speedup))
      .set("speedup_gate_armed", bench::Json::boolean(speedup_armed))
      .set("fewer_barriers", bench::Json::boolean(fewer_barriers))
      .set("same_work", bench::Json::boolean(work_agrees));

  // ---- degraded-fabric loss sweep (DESIGN.md §7.8) ----------------
  // A small leaf-spine cell swept over per-packet loss probabilities.
  // Gates: every op completes despite the loss (RC go-back-N recovers),
  // a lossy fabric actually drops and retransmits, a clean one does
  // neither, degradation is monotone at the top of the sweep, and the
  // whole degraded schedule replays byte-identically at 8 threads.
  const double loss_points[] = {0.0, 1e-4, 1e-2};
  bench::Json loss_rows = bench::Json::array();
  bool loss_ok = true;
  double clean_avg_us = 0.0;
  double worst_avg_us = 0.0;
  std::uint64_t worst_drops = 0;
  std::uint64_t worst_retx = 0;
  for (const double loss : loss_points) {
    bench::MicroConfig lc;
    lc.objects = 512;
    lc.object_size = 4096;
    lc.clients = 1;
    lc.ops = 256;
    lc.seed = seed;
    lc.jitter_sigma = 0.0;
    lc.topology.preset = net::TopologyPreset::kLeafSpine;
    lc.topology.hosts_per_rack = kHostsPerRack;
    lc.topology.spines = kSpines;
    lc.topology.trunk_prop_scale = kTrunkPropScale;
    lc.topology.pfc = pfc;
    lc.clients_per_host = 64;
    lc.client_outstanding = 8;
    lc.client_think_ns = 2000;
    lc.loss_probability = loss;
    lc.retransmit_interval = 1 * sim::kMillisecond;

    lc.engine_threads = 1;
    const TimedRun serial = timed_run(lc);
    lc.engine_threads = 8;
    const TimedRun sharded = timed_run(lc);
    const bool same = lossy_identical(serial.res, sharded.res);

    const bench::MicroResult& r = serial.res;
    const bool completed = r.ops_completed >= lc.ops;
    bool row_ok = same && completed;
    if (loss == 0.0) {
      clean_avg_us = r.avg_us();
      row_ok = row_ok && r.net_drops == 0 && r.rnic_retransmits == 0;
    } else if (loss >= 1e-2) {
      worst_avg_us = r.avg_us();
      worst_drops = r.net_drops;
      worst_retx = r.rnic_retransmits;
      row_ok = row_ok && r.net_drops > 0 && r.rnic_retransmits > 0;
    }
    loss_ok = loss_ok && row_ok;

    bench::Json row = bench::Json::object();
    row.set("loss", bench::Json::num(loss))
        .set("kops", bench::Json::num(r.kops))
        .set("avg_us", bench::Json::num(r.avg_us()))
        .set("p99_us", bench::Json::num(r.p99_us()))
        .set("ops_completed", bench::Json::num(r.ops_completed))
        .set("net_drops", bench::Json::num(r.net_drops))
        .set("rnic_retransmits", bench::Json::num(r.rnic_retransmits))
        .set("identical", bench::Json::boolean(same))
        .set("ok", bench::Json::boolean(row_ok));
    loss_rows.push(std::move(row));
  }
  const bool degrades = worst_avg_us >= clean_avg_us;
  loss_ok = loss_ok && degrades;
  std::printf(
      "\nloss sweep (2 hosts, 64 clients): clean %.2f us -> 1e-2 %.2f us "
      "(%llu drops, %llu retransmits)%s\n",
      clean_avg_us, worst_avg_us,
      static_cast<unsigned long long>(worst_drops),
      static_cast<unsigned long long>(worst_retx),
      loss_ok ? "" : " FAILED");

  const bool ok =
      deterministic && fewer_barriers && work_agrees && speedup_ok && loss_ok;

  bench::Json doc = bench::Json::object();
  doc.set("bench", bench::Json::str("topology"))
      .set("ops_per_host", bench::Json::num(ops_per_host))
      .set("hosts_per_rack",
           bench::Json::num(static_cast<std::uint64_t>(kHostsPerRack)))
      .set("spines", bench::Json::num(static_cast<std::uint64_t>(kSpines)))
      .set("trunk_prop_scale", bench::Json::num(kTrunkPropScale))
      .set("pfc", bench::Json::boolean(pfc))
      .set("rows", std::move(rows))
      .set("layout_ab", std::move(layout))
      .set("loss_sweep", std::move(loss_rows))
      .set("loss_ok", bench::Json::boolean(loss_ok))
      .set("deterministic", bench::Json::boolean(deterministic));
  if (!bench::emit_json(out, doc)) {
    std::printf("failed to open %s for writing\n", out.c_str());
    return 2;
  }
  std::printf("wrote %s\n", out.c_str());
  return ok ? 0 : 1;
}
