// §4.4.1 case study (Fig. 7a): retrofitting an existing RDMA system
// (Octopus) with the WFlush primitive. Plain Octopus only learns of
// durability when the RPC response returns — after server processing.
// With WFlush, remote persistence is visible at the flush ACK.
//
// Flags: --ops=N (default 3000), --seed=N, --jobs=N, --quick

#include <cstdio>
#include <vector>

#include "bench_util/micro.hpp"
#include "bench_util/sweep.hpp"
#include "bench_util/flags.hpp"
#include "bench_util/table.hpp"
#include "core/node.hpp"
#include "rpcs/baseline.hpp"
#include "sim/sync.hpp"

using namespace prdma;
using namespace prdma::sim::literals;

namespace {

struct Outcome {
  double durable_us;
  double complete_us;
};

Outcome run(rpcs::BaselineConfig config, std::uint64_t ops,
            std::uint64_t seed, bool heavy,
            const net::TopologyConfig& topology) {
  bench::MicroConfig mc;
  mc.object_size = 4096;
  mc.seed = seed;
  mc.heavy_load = heavy;
  mc.topology = topology;
  const auto params = bench::params_for(mc);

  core::Cluster cluster(params, 2);
  rpcs::BaselineServer server(cluster, 0, config, params);
  auto client = server.connect_client(1);
  server.start();

  stats::LatencyHistogram durable;
  stats::LatencyHistogram complete;
  sim::spawn([](core::RpcClient& c, std::uint64_t n,
                stats::LatencyHistogram& d,
                stats::LatencyHistogram& t) -> sim::Task<> {
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto res = co_await c.call(
          core::RpcRequest{core::RpcOp::kWrite, i % 64, 4096});
      if (!res.ok) continue;
      t.record(res.latency());
      if (res.durable_at > res.issued_at) {
        d.record(res.durable_at - res.issued_at);
      }
    }
  }(*client, ops, durable, complete));
  cluster.sim().run();

  return {durable.mean() / 1e3, complete.mean() / 1e3};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  if (flags.help_requested()) {
    flags.print_help();
    return 0;
  }
  const std::uint64_t ops = flags.u64("ops", flags.flag("quick") ? 800 : 3000);
  const std::uint64_t seed = flags.u64("seed", 1);
  const net::TopologyConfig topology = bench::topology_from(flags);

  std::printf("Case study §4.4.1 — Octopus retrofitted with WFlush\n");
  std::printf("(Fig. 7a); 4KB durable writes\n\n");

  // 2 loads × {plain, +WFlush}: four independent cells.
  bench::SweepRunner runner(bench::jobs_from(flags));
  const auto outcomes = runner.map_n(4, [&](std::size_t i) {
    const bool heavy = i / 2 != 0;
    return run(i % 2 == 0 ? rpcs::octopus_config()
                          : rpcs::octopus_wflush_config(),
               ops, seed, heavy, topology);
  });

  for (const bool heavy : {false, true}) {
    std::printf("%s load:\n", heavy ? "Heavy (100us processing)" : "Light");
    bench::TablePrinter table(
        {"System", "durable visible (us)", "RPC complete (us)"});
    const Outcome& plain = outcomes[heavy ? 2 : 0];
    const Outcome& flushed = outcomes[heavy ? 3 : 1];
    table.add_row({"Octopus", bench::TablePrinter::num(plain.durable_us, 1),
                   bench::TablePrinter::num(plain.complete_us, 1)});
    table.add_row({"Octopus+WFlush",
                   bench::TablePrinter::num(flushed.durable_us, 1),
                   bench::TablePrinter::num(flushed.complete_us, 1)});
    table.print();
    std::printf("\n");
  }
  std::printf("With WFlush, durability is visible at the flush ACK instead\n");
  std::printf("of after server-side processing — the larger the processing\n");
  std::printf("cost, the larger the gap.\n");
  return 0;
}
