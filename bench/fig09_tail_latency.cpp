// Reproduces Fig. 9: 95th / 99th percentile and average latency of the
// RPC systems for 1 KB and 64 KB objects (micro-benchmark, §5.2).
//
// Flags: --ops=N (default 6000), --seed=N, --jobs=N, --quick,
//        --json=PATH, --trace=PATH

#include <cstdio>
#include <vector>

#include "bench_util/flags.hpp"
#include "bench_util/micro.hpp"
#include "bench_util/report.hpp"
#include "bench_util/sweep.hpp"
#include "bench_util/table.hpp"

using namespace prdma;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv, {},
                           "Fig. 9: tail and average RPC latency.");
  if (flags.help_requested()) {
    flags.print_help();
    return 0;
  }
  const std::uint64_t ops = flags.u64("ops", flags.flag("quick") ? 1500 : 6000);
  const std::uint64_t seed = flags.u64("seed", 1);
  bench::SweepRunner runner(bench::jobs_from(flags));
  bench::Report report(flags, "fig09_tail_latency");

  std::printf("Fig. 9 — tail and average RPC latency (us)\n");
  std::printf("zipfian(0.99), R:W 1:1, ops/cell=%llu, seed=%llu\n\n",
              static_cast<unsigned long long>(ops),
              static_cast<unsigned long long>(seed));

  const std::uint32_t sizes[] = {1024, 64 * 1024};
  const char* labels[] = {"(a) 1KB objects", "(b) 64KB objects"};
  for (int si = 0; si < 2; ++si) {
    std::printf("%s\n", labels[si]);
    std::vector<bench::MicroCell> cells;
    std::vector<rpcs::System> systems;
    for (const rpcs::System sys : rpcs::evaluation_lineup(sizes[si])) {
      if (sys == rpcs::System::kFaSST) continue;  // not in the paper's Fig. 9
      bench::MicroConfig cfg;
      cfg.object_size = sizes[si];
      cfg.ops = ops;
      cfg.seed = seed;
      report.configure(cfg);
      cells.push_back({sys, cfg});
      systems.push_back(sys);
    }
    const auto results = bench::run_micro_cells(runner, cells);

    bench::TablePrinter table({"System", "95th", "99th", "Avg"});
    for (std::size_t k = 0; k < systems.size(); ++k) {
      const auto& res = results[k];
      table.add_row({std::string(rpcs::name_of(systems[k])),
                     bench::TablePrinter::num(res.p95_us(), 1),
                     bench::TablePrinter::num(res.p99_us(), 1),
                     bench::TablePrinter::num(res.avg_us(), 1)});
      report.add(std::string(rpcs::name_of(systems[k])) + "/" +
                     std::to_string(sizes[si]) + "B",
                 res);
    }
    table.print();
    std::printf("\n");
  }
  return report.write() ? 0 : 1;
}
