// Example: graph analytics with the dataset in remote persistent
// memory (the paper's §5.3 PageRank scenario). The client fetches CSR
// pages through the RPC layer each iteration and keeps ranks locally.
//
// Run: ./build/examples/pagerank_remote_pm [--iters=N]

#include <cstdio>
#include <string>

#include "bench_util/flags.hpp"
#include "bench_util/table.hpp"
#include "graph/pagerank.hpp"

using namespace prdma;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  if (flags.help_requested()) {
    flags.print_help();
    return 0;
  }
  graph::PageRankConfig cfg;
  cfg.iterations = static_cast<std::uint32_t>(flags.u64("iters", 5));

  const graph::GraphSpec spec = graph::kEnron;  // 69K nodes / 276K edges
  std::printf("PageRank over remote PM — %s (%u nodes, %llu edges), %u"
              " iterations\n\n",
              spec.name.data(), spec.nodes,
              static_cast<unsigned long long>(spec.edges), cfg.iterations);

  bench::TablePrinter table(
      {"System", "time (ms)", "page fetches", "top rank"});
  for (const rpcs::System sys :
       {rpcs::System::kFaRM, rpcs::System::kRFP, rpcs::System::kDaRPC,
        rpcs::System::kWFlushRpc, rpcs::System::kWRFlushRpc}) {
    const auto res = graph::run_pagerank(sys, spec, cfg);
    table.add_row({std::string(rpcs::name_of(sys)),
                   bench::TablePrinter::num(sim::to_ms(res.duration), 2),
                   std::to_string(res.rpcs),
                   bench::TablePrinter::num(res.top_rank * 1e3, 3) + "e-3"});
  }
  table.print();
  std::printf("\nRank sum invariant and per-node values are identical across"
              " systems;\nonly the data-plane transport differs.\n");
  return 0;
}
