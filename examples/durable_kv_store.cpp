// Example: a key-value store over remote persistent memory (the
// paper's §5.3 scenario). The client keeps its index locally and
// reaches values in the server's PM through an RPC system; this
// example runs a YCSB-A mix on a traditional RPC (FaRM-style) and on
// the paper's WFlush-RPC, and prints the latency comparison.
//
// Run: ./build/examples/durable_kv_store [--ops=N]

#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util/flags.hpp"
#include "bench_util/table.hpp"
#include "kv/ycsb.hpp"

using namespace prdma;

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  if (flags.help_requested()) {
    flags.print_help();
    return 0;
  }
  kv::YcsbConfig cfg;
  cfg.workload = kv::Workload::kA;  // 50% update / 50% read, zipfian
  cfg.records = 4096;
  cfg.value_size = 4096;
  cfg.ops = flags.u64("ops", 2000);

  std::printf("KV store over remote PM — YCSB-A (%llu ops, 4KB values)\n\n",
              static_cast<unsigned long long>(cfg.ops));

  bench::TablePrinter table({"System", "avg (us)", "p95 (us)", "p99 (us)",
                             "RPCs issued"});
  for (const rpcs::System sys :
       {rpcs::System::kFaRM, rpcs::System::kDaRPC, rpcs::System::kWFlushRpc,
        rpcs::System::kSFlushRpc}) {
    const auto res = kv::run_ycsb(sys, cfg);
    table.add_row({std::string(rpcs::name_of(sys)),
                   bench::TablePrinter::num(res.avg_us(), 1),
                   bench::TablePrinter::num(
                       static_cast<double>(res.latency.p95()) / 1e3, 1),
                   bench::TablePrinter::num(
                       static_cast<double>(res.latency.p99()) / 1e3, 1),
                   std::to_string(res.rpcs_issued)});
  }
  table.print();
  std::printf(
      "\nThe durable RPCs complete updates at the persist-ACK, so the\n"
      "update half of the mix never waits for server-side processing.\n");
  return 0;
}
