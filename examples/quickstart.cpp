// Quickstart: the paper's headline mechanism in ~80 lines.
//
// Builds a two-node cluster (client + PM server), deploys the
// WFlush-RPC durable RPC system, and shows that
//   1. a durable write completes at the *persist* acknowledgement,
//      long before the server has processed the request, and
//   2. a server power failure right after that acknowledgement loses
//      nothing: recovery replays the redo log without the client
//      re-sending any data.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "core/durable_rpc.hpp"
#include "core/node.hpp"
#include "core/params.hpp"

using namespace prdma;
using namespace prdma::sim::literals;

int main() {
  // A cluster with calibrated PM/RNIC/network models (DESIGN.md §5).
  // Heavy load: every request costs the server 100 us of processing.
  core::ModelParams params;
  params.rpc_processing = 100_us;
  params.max_payload = 4096;
  params.object_count = 1024;
  params.memory.pm_capacity = 64ull << 20;

  core::Cluster cluster(params, /*nodes=*/2);
  core::DurableRpcServer server(cluster, /*server_idx=*/0,
                                core::FlushVariant::kWFlush, params);
  auto client = server.connect_client(/*client_idx=*/1);
  server.start();

  std::printf("== durable write (write + WFlush) ==\n");
  sim::spawn([](core::Cluster& c, core::DurableRpcServer& srv,
                core::DurableRpcClient& cli) -> sim::Task<> {
    // One 4 KB durable write to object 42.
    const auto res =
        co_await cli.call(core::RpcRequest{core::RpcOp::kWrite, 42, 4096});

    std::printf("write completed at t=%s (persist-ACK latency %.1f us)\n",
                sim::format_time(res.completed_at).c_str(),
                sim::to_us(res.latency()));
    std::printf("server has processed %llu ops so far -> the 100 us of\n"
                "processing is NOT on the client's critical path\n",
                static_cast<unsigned long long>(srv.stats().ops_processed));

    // Power failure before processing finishes.
    std::printf("\n== power failure at the server ==\n");
    srv.on_crash();
    c.node(0).crash();
    cli.abort_pending();

    co_await sim::delay(c.sim(), 300 * sim::kMillisecond);  // unikernel boot
    c.node(0).restart();
    co_await srv.recover_and_restart();
    srv.reconnect_client(cli);
    std::printf("restarted; %llu log entries replayed without any client\n"
                "involvement (stats().recoveries)\n",
                static_cast<unsigned long long>(srv.stats().recoveries));
  }(cluster, server, *client));

  cluster.sim().run();

  // Verify the write landed durably despite the crash.
  std::vector<std::byte> got(16);
  cluster.node(0).mem().cpu_read(server.store().addr_of(42), got);
  std::printf("\nobject 42 first bytes after crash+recovery:");
  for (int i = 0; i < 8; ++i) {
    std::printf(" %02x", static_cast<unsigned>(got[static_cast<size_t>(i)]));
  }
  std::printf("\n(simulated time elapsed: %s)\n",
              sim::format_time(cluster.sim().now()).c_str());
  return 0;
}
