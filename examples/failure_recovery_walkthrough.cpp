// Example: end-to-end failure recovery walkthrough (§4.2/§5.4).
// A pipelined client streams durable writes while the server is
// crashed twice; the walkthrough prints what the redo log recovers,
// what the client re-sends, and the total cost vs a traditional RPC
// system under the same failures.
//
// Run: ./build/examples/failure_recovery_walkthrough

#include <cstdio>

#include "fault/experiment.hpp"

using namespace prdma;

int main() {
  fault::FailureRunConfig cfg;
  cfg.ops = 600;
  cfg.crashes = 2;
  cfg.window = 8;
  cfg.read_ratio = 0.0;

  std::printf("600 durable 4KB writes, 2 server power failures,\n");
  std::printf("300ms unikernel restart, 100ms RDMA retransmit interval\n\n");

  for (const rpcs::System sys :
       {rpcs::System::kWFlushRpc, rpcs::System::kFaRM}) {
    const auto res = fault::run_with_failures(sys, cfg);
    std::printf("%-12s  total=%8.1f ms  completed=%llu  crashes=%u\n"
                "              client re-sends=%llu  log replays=%llu\n",
                rpcs::name_of(sys).data(), sim::to_ms(res.total),
                static_cast<unsigned long long>(res.ops_completed),
                res.crashes, static_cast<unsigned long long>(res.resends),
                static_cast<unsigned long long>(res.replayed));
  }

  std::printf(
      "\nThe durable RPC replays committed log entries server-side; the\n"
      "traditional system makes the client re-send request AND data, one\n"
      "retransmission-timer expiry at a time (§5.4).\n");
  return 0;
}
