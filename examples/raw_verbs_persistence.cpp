// Example: the verbs layer directly — demonstrates the paper's §2.4
// problem and the §4.1 fix at the lowest level of the API.
//
//  step 1: RDMA write + work completion, then power failure
//          -> the "completed" data is gone (T_A < T_B).
//  step 2: RDMA write + WFlush, then power failure
//          -> the data survives.
//  step 3: DDIO enabled: read-after-write "verifies" the data, power
//          failure -> gone anyway (the §2.4 trap).
//
// Run: ./build/examples/raw_verbs_persistence

#include <cstdio>
#include <vector>

#include "mem/node_memory.hpp"
#include "net/fabric.hpp"
#include "rdma/completer.hpp"
#include "rdma/session.hpp"
#include "rnic/rnic.hpp"

using namespace prdma;
using namespace prdma::sim::literals;

namespace {

struct TwoNodes {
  sim::Simulator sim;
  sim::Rng rng{1};
  net::Fabric fabric;
  mem::NodeMemory cmem;
  mem::NodeMemory smem;
  rnic::Rnic cnic;
  rnic::Rnic snic;
  rnic::Cq scq, rcq, s_scq, s_rcq;
  rnic::Qp* cqp;

  explicit TwoNodes(bool ddio)
      : fabric(sim, rng, {}),
        cmem(sim, mem_params()),
        smem(sim, mem_params()),
        cnic(sim, rng, fabric, cmem, 0, rnic_params(ddio)),
        snic(sim, rng, fabric, smem, 1, rnic_params(ddio)),
        scq(sim),
        rcq(sim),
        s_scq(sim),
        s_rcq(sim) {
    auto [a, b] = rdma::connect_pair(cnic, rnic::Transport::kRC, scq, rcq,
                                     snic, rnic::Transport::kRC, s_scq, s_rcq);
    cqp = a;
    (void)b;
  }

  static mem::NodeMemoryParams mem_params() {
    mem::NodeMemoryParams p;
    p.pm_capacity = 8ull << 20;
    p.dram_capacity = 8ull << 20;
    return p;
  }
  static rnic::RnicParams rnic_params(bool ddio) {
    rnic::RnicParams p;
    p.ddio = ddio;
    return p;
  }

  bool pm_holds_pattern(std::uint64_t addr, std::size_t n) {
    std::vector<std::byte> out(n);
    smem.pm().peek(addr, out);
    for (std::size_t i = 0; i < n; ++i) {
      if (out[i] != static_cast<std::byte>(i & 0xFF)) return false;
    }
    return true;
  }
};

}  // namespace

int main() {
  constexpr std::uint64_t kLen = 256 * 1024;
  constexpr std::uint64_t kSrc = mem::NodeMemory::kDramBase;

  {  // --- step 1: plain write; crash right after the WC -------------
    TwoNodes t(/*ddio=*/false);
    std::vector<std::byte> data(kLen);
    for (std::size_t i = 0; i < kLen; ++i) data[i] = static_cast<std::byte>(i);
    t.cmem.cpu_write(kSrc, data);
    sim::spawn([](TwoNodes& n) -> sim::Task<> {
      rdma::Completer comp(n.sim, n.scq);
      rdma::QpSession s(n.cnic, *n.cqp, comp);
      (void)co_await s.write(kSrc, kLen, 0x1000);
      std::printf("[1] write WC at t=%s — looks done!\n",
                  sim::format_time(n.sim.now()).c_str());
      n.snic.crash();
      n.smem.crash();
    }(t));
    t.sim.run();
    std::printf("[1] after crash: PM holds the data? %s  (T_A < T_B)\n\n",
                t.pm_holds_pattern(0x1000, 64) ? "yes" : "NO — lost");
  }

  {  // --- step 2: write + WFlush ------------------------------------
    TwoNodes t(/*ddio=*/false);
    std::vector<std::byte> data(kLen);
    for (std::size_t i = 0; i < kLen; ++i) data[i] = static_cast<std::byte>(i);
    t.cmem.cpu_write(kSrc, data);
    sim::spawn([](TwoNodes& n) -> sim::Task<> {
      rdma::Completer comp(n.sim, n.scq);
      rdma::QpSession s(n.cnic, *n.cqp, comp);
      s.post_write_nowait(kSrc, kLen, 0x1000);
      (void)co_await s.wflush(0x1000, kLen);
      std::printf("[2] WFlush ACK at t=%s — durable by contract\n",
                  sim::format_time(n.sim.now()).c_str());
      n.snic.crash();
      n.smem.crash();
    }(t));
    t.sim.run();
    std::printf("[2] after crash: PM holds the data? %s\n\n",
                t.pm_holds_pattern(0x1000, 64) ? "yes" : "NO — lost");
  }

  {  // --- step 3: DDIO read-after-write trap ------------------------
    TwoNodes t(/*ddio=*/true);
    std::vector<std::byte> data(4096);
    for (std::size_t i = 0; i < 4096; ++i) data[i] = static_cast<std::byte>(i);
    t.cmem.cpu_write(kSrc, data);
    sim::spawn([](TwoNodes& n) -> sim::Task<> {
      rdma::Completer comp(n.sim, n.scq);
      rdma::QpSession s(n.cnic, *n.cqp, comp);
      (void)co_await s.write(kSrc, 4096, 0x2000);
      (void)co_await s.read(0x2000, 4096, kSrc + (1 << 20));
      std::vector<std::byte> rb(64);
      n.cmem.cpu_read(kSrc + (1 << 20), rb);
      const bool check = rb[5] == static_cast<std::byte>(5);
      std::printf("[3] DDIO on: read-after-write check passed? %s\n",
                  check ? "yes (data came from the L3 cache)" : "no");
      n.snic.crash();
      n.smem.crash();
    }(t));
    t.sim.run();
    std::printf("[3] after crash: PM holds the data? %s  (the §2.4 trap)\n",
                t.pm_holds_pattern(0x2000, 64) ? "yes" : "NO — lost");
  }
  return 0;
}
